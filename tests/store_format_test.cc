// The store layer's crash-consistency and ABI contracts:
//  * record codec round-trips every field — kNull RSSIs, unassigned ids,
//    RP-less records — and classifies torn vs corrupt frames;
//  * snapshot files round-trip bit-exactly (sections, grid, survey base),
//    are byte-deterministic, and keep every section 64-byte aligned;
//  * the zero-copy MapSnapshotView answers bit-identically to a heap
//    KnnEstimator fitted on the same references (batch and scalar,
//    complete and partial fingerprints);
//  * validation refuses bit flips (header and payload CRC), truncation,
//    and format-version skew; MapNewestValid walks past torn files and
//    ".tmp" rename-race orphans to the newest valid one;
//  * the WAL replays appends in order across rotation, deletes sealed
//    segments below the watermark, tolerates torn tails, and stops a
//    segment at a CRC-failed frame.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/missing.h"
#include "common/rng.h"
#include "la/quant.h"
#include "positioning/estimators.h"
#include "serving/spatial_index.h"
#include "serving/synthetic.h"
#include "store/crc32c.h"
#include "store/record_codec.h"
#include "store/snapshot_format.h"
#include "store/wal.h"

namespace rmi::store {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test case (removed and recreated, so a
/// rerun never sees a previous run's files).
std::string ScratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void FlipByte(const std::string& path, size_t offset) {
  std::string bytes = ReadFile(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x5A);
  WriteFile(path, bytes);
}

void TruncateFile(const std::string& path, size_t new_size) {
  std::string bytes = ReadFile(path);
  ASSERT_LE(new_size, bytes.size());
  bytes.resize(new_size);
  WriteFile(path, bytes);
}

/// Field-exact record equality, NaN cells compared as bit patterns.
void ExpectRecordsEqual(const rmap::Record& a, const rmap::Record& b) {
  ASSERT_EQ(a.rssi.size(), b.rssi.size());
  for (size_t j = 0; j < a.rssi.size(); ++j) {
    uint64_t ba = 0;
    uint64_t bb = 0;
    std::memcpy(&ba, &a.rssi[j], sizeof(ba));
    std::memcpy(&bb, &b.rssi[j], sizeof(bb));
    EXPECT_EQ(ba, bb) << "rssi[" << j << "]";
  }
  EXPECT_EQ(a.has_rp, b.has_rp);
  if (a.has_rp && b.has_rp) {
    EXPECT_EQ(a.rp.x, b.rp.x);
    EXPECT_EQ(a.rp.y, b.rp.y);
  }
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.path_id, b.path_id);
  EXPECT_EQ(a.id, b.id);
}

rmap::Record MakeRecord(size_t width, uint64_t salt) {
  rmap::Record r;
  r.rssi.resize(width);
  for (size_t j = 0; j < width; ++j) {
    r.rssi[j] = (j + salt) % 3 == 0
                    ? kNull
                    : -30.0 - static_cast<double>((j * 7 + salt) % 60);
  }
  r.rp = {1.5 * static_cast<double>(salt), 0.25 + static_cast<double>(salt)};
  r.has_rp = salt % 2 == 0;
  r.time = 0.125 * static_cast<double>(salt);
  r.path_id = salt % 5;
  r.id = salt % 4 == 0 ? rmap::Record::kUnassignedId : 1000 + salt;
  return r;
}

/// A fitted WKNN over a small complete synthetic map plus the matching
/// snapshot write request — the fixture most snapshot tests start from.
struct FittedShard {
  rmap::RadioMap map;
  positioning::KnnEstimator knn{3, true};
  serving::SpatialIndex index;
  GridImage grid;

  explicit FittedShard(uint64_t seed = 7) : knn(3, true) {
    map = serving::MakeSyntheticServingMap(8, 6, 12, seed);
    map.set_shard({2, 5});
    Rng rng(seed);
    knn.Fit(map, rng);
    index.Build(knn.features(), knn.labels(), 6.0);
    grid = index.Image();
  }

  SnapshotWriteRequest Request(uint64_t version, uint64_t watermark) const {
    SnapshotWriteRequest req;
    req.snapshot_version = version;
    req.shard = map.shard();
    req.wal_watermark = watermark;
    req.num_refs = knn.labels().size();
    req.num_aps = map.num_aps();
    req.quant = knn.quantized().span();
    req.refs = knn.features().data().data();
    req.positions = knn.labels().data();
    req.grid = &grid;
    req.base = &map;
    return req;
  }
};

// ---------------------------------------------------------------- codec --

TEST(RecordCodec, FrameRoundTripsEveryFieldIncludingNullsAndUnassignedIds) {
  for (uint64_t salt = 0; salt < 8; ++salt) {
    const rmap::Record original = MakeRecord(11, salt);
    std::string buf;
    AppendRecordFrame(original, &buf);

    rmap::Record parsed;
    size_t consumed = 0;
    ASSERT_EQ(ParseRecordFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                               buf.size(), &parsed, &consumed),
              FrameStatus::kOk);
    EXPECT_EQ(consumed, buf.size());
    ExpectRecordsEqual(original, parsed);
  }
}

TEST(RecordCodec, ShortBufferIsTornNotCorrupt) {
  std::string buf;
  AppendRecordFrame(MakeRecord(9, 3), &buf);

  rmap::Record out;
  size_t consumed = 0;
  const auto* p = reinterpret_cast<const uint8_t*>(buf.data());
  // Every strict prefix — mid-header and mid-payload — is a torn tail.
  for (size_t avail = 0; avail < buf.size(); ++avail) {
    EXPECT_EQ(ParseRecordFrame(p, avail, &out, &consumed),
              FrameStatus::kTruncated)
        << "avail=" << avail;
  }
}

TEST(RecordCodec, BitFlippedPayloadIsCorrupt) {
  std::string buf;
  AppendRecordFrame(MakeRecord(9, 4), &buf);
  buf[kFrameHeaderBytes + 5] ^= 0x10;

  rmap::Record out;
  size_t consumed = 0;
  EXPECT_EQ(ParseRecordFrame(reinterpret_cast<const uint8_t*>(buf.data()),
                             buf.size(), &out, &consumed),
            FrameStatus::kCorrupt);
}

// ------------------------------------------------------------- snapshot --

TEST(SnapshotFormat, WriteMapRoundTripsEverySection) {
  const std::string dir = ScratchDir("snap_roundtrip");
  const FittedShard shard;
  const std::string path = dir + "/" + SnapshotFileName(42);

  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, shard.Request(42, 9), &error)) << error;

  auto mapped = MappedSnapshot::Map(path, &error);
  ASSERT_NE(mapped, nullptr) << error;

  const SnapshotHeader& h = mapped->header();
  EXPECT_EQ(h.snapshot_version, 42u);
  EXPECT_EQ(h.building, 2);
  EXPECT_EQ(h.floor, 5);
  EXPECT_EQ(h.wal_watermark, 9u);
  EXPECT_EQ(h.num_refs, shard.knn.labels().size());
  EXPECT_EQ(h.num_aps, shard.map.num_aps());
  EXPECT_EQ(h.flags, kFlagHasQuant | kFlagHasGrid | kFlagHasBase);

  const MapSnapshotView view = mapped->view();
  const la::QuantizedRefs& q = shard.knn.quantized();
  ASSERT_EQ(view.quant.rows, q.rows);
  ASSERT_EQ(view.quant.cols, q.cols);
  ASSERT_EQ(view.quant.padded, q.padded);
  EXPECT_EQ(std::memcmp(view.quant.values, q.values.data(),
                        q.cols * q.padded * sizeof(int8_t)),
            0);
  EXPECT_EQ(std::memcmp(view.quant.squares, q.squares.data(),
                        q.cols * q.padded * sizeof(int16_t)),
            0);
  EXPECT_EQ(std::memcmp(view.quant.norms, q.norms.data(),
                        q.rows * sizeof(int32_t)),
            0);
  EXPECT_EQ(std::memcmp(view.quant.scale, q.scale.data(),
                        q.cols * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(view.quant.zero_point, q.zero_point.data(),
                        q.cols * sizeof(double)),
            0);
  EXPECT_EQ(view.quant.min_scale, q.min_scale);
  EXPECT_EQ(view.quant.max_scale, q.max_scale);

  EXPECT_EQ(std::memcmp(view.refs, shard.knn.features().data().data(),
                        view.num_refs * view.num_aps * sizeof(double)),
            0);
  for (size_t r = 0; r < view.num_refs; ++r) {
    EXPECT_EQ(view.positions[r].x, shard.knn.labels()[r].x);
    EXPECT_EQ(view.positions[r].y, shard.knn.labels()[r].y);
  }
  for (size_t j = 0; j < view.num_aps; ++j) {
    EXPECT_EQ(view.ap_ids[j], j);  // identity mapping when none supplied
  }

  GridImage grid;
  ASSERT_TRUE(mapped->DecodeGrid(&grid));
  EXPECT_EQ(grid.slot, shard.grid.slot);
  EXPECT_EQ(grid.cell_offsets, shard.grid.cell_offsets);
  EXPECT_EQ(grid.members, shard.grid.members);
  EXPECT_EQ(grid.centroids, shard.grid.centroids);
  EXPECT_EQ(grid.radii, shard.grid.radii);

  rmap::RadioMap base;
  ASSERT_TRUE(mapped->DecodeBase(&base));
  ASSERT_EQ(base.size(), shard.map.size());
  EXPECT_EQ(base.num_aps(), shard.map.num_aps());
  for (size_t i = 0; i < base.size(); ++i) {
    ExpectRecordsEqual(shard.map.record(i), base.record(i));
  }
}

TEST(SnapshotFormat, EverySectionOffsetIsCacheLineAligned) {
  const std::string dir = ScratchDir("snap_align");
  const FittedShard shard;
  const std::string path = dir + "/" + SnapshotFileName(1);
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, shard.Request(1, 1), &error)) << error;

  auto mapped = MappedSnapshot::Map(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  for (uint32_t s = 0; s < kNumSections; ++s) {
    const SectionRange& range = mapped->header().sections[s];
    EXPECT_EQ(range.offset % kSectionAlign, 0u) << "section " << s;
    if (range.size != 0) {
      EXPECT_GE(range.offset, kSnapshotHeaderBytes) << "section " << s;
    }
  }
}

TEST(SnapshotFormat, SameStateSerializesToIdenticalBytes) {
  // The determinism contract the restart-equality tests and the CI ABI
  // canary stand on: no timestamps, zeroed padding, stable section order.
  const std::string dir = ScratchDir("snap_determinism");
  const FittedShard shard;
  std::string error;
  ASSERT_TRUE(
      WriteSnapshotFile(dir + "/a.rmsnap", shard.Request(7, 3), &error))
      << error;
  ASSERT_TRUE(
      WriteSnapshotFile(dir + "/b.rmsnap", shard.Request(7, 3), &error))
      << error;
  EXPECT_EQ(ReadFile(dir + "/a.rmsnap"), ReadFile(dir + "/b.rmsnap"));
}

TEST(SnapshotFormat, ViewServesBitIdenticallyToHeapEstimator) {
  const std::string dir = ScratchDir("snap_view");
  const FittedShard shard;
  const std::string path = dir + "/" + SnapshotFileName(1);
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, shard.Request(1, 1), &error)) << error;
  auto mapped = MappedSnapshot::Map(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  const MapSnapshotView view = mapped->view();
  ASSERT_TRUE(view.has_quant());

  // Complete and partial (kNull-bearing) fingerprints, batch path.
  for (const double null_fraction : {0.0, 0.35}) {
    const la::Matrix queries = serving::MakeSyntheticQueries(
        shard.map, 48, null_fraction, 101 + size_t(null_fraction * 100));
    const std::vector<geom::Point> heap = shard.knn.EstimateBatch(queries);
    const std::vector<geom::Point> zero_copy =
        view.EstimateBatch(queries, shard.knn.k(), shard.knn.weighted());
    ASSERT_EQ(heap.size(), zero_copy.size());
    for (size_t i = 0; i < heap.size(); ++i) {
      EXPECT_EQ(heap[i].x, zero_copy[i].x) << "row " << i;
      EXPECT_EQ(heap[i].y, zero_copy[i].y) << "row " << i;
    }
  }

  // Scalar path (no quant needed): same exact-rescore answers.
  const la::Matrix queries =
      serving::MakeSyntheticQueries(shard.map, 16, 0.2, 303);
  for (size_t i = 0; i < queries.rows(); ++i) {
    const std::vector<double> q = serving::MatrixRow(queries, i);
    const geom::Point heap = shard.knn.Estimate(q);
    const geom::Point zero_copy =
        view.Estimate(q, shard.knn.k(), shard.knn.weighted());
    EXPECT_EQ(heap.x, zero_copy.x) << "row " << i;
    EXPECT_EQ(heap.y, zero_copy.y) << "row " << i;
  }
}

TEST(SnapshotFormat, HeaderBitFlipIsRefused) {
  const std::string dir = ScratchDir("snap_hdr_flip");
  const FittedShard shard;
  const std::string path = dir + "/" + SnapshotFileName(1);
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, shard.Request(1, 1), &error)) << error;

  FlipByte(path, offsetof(SnapshotHeader, num_refs));
  EXPECT_EQ(MappedSnapshot::Map(path, &error), nullptr);
  EXPECT_NE(error.find("header"), std::string::npos) << error;
}

TEST(SnapshotFormat, PayloadBitFlipIsRefused) {
  const std::string dir = ScratchDir("snap_payload_flip");
  const FittedShard shard;
  const std::string path = dir + "/" + SnapshotFileName(1);
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, shard.Request(1, 1), &error)) << error;

  FlipByte(path, kSnapshotHeaderBytes + 17);
  EXPECT_EQ(MappedSnapshot::Map(path, &error), nullptr);
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(SnapshotFormat, FutureFormatVersionIsRefusedEvenWithValidCrc) {
  const std::string dir = ScratchDir("snap_version");
  const FittedShard shard;
  const std::string path = dir + "/" + SnapshotFileName(1);
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, shard.Request(1, 1), &error)) << error;

  // Patch the version and re-stamp header_crc, so refusal is the version
  // check itself, not CRC collateral.
  std::string bytes = ReadFile(path);
  SnapshotHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  h.format_version = kSnapshotFormatVersion + 1;
  h.header_crc = Crc32c(&h, offsetof(SnapshotHeader, header_crc));
  std::memcpy(bytes.data(), &h, sizeof(h));
  WriteFile(path, bytes);

  EXPECT_EQ(MappedSnapshot::Map(path, &error), nullptr);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SnapshotFormat, TruncatedFileIsRefused) {
  const std::string dir = ScratchDir("snap_trunc");
  const FittedShard shard;
  const std::string path = dir + "/" + SnapshotFileName(1);
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(path, shard.Request(1, 1), &error)) << error;

  const size_t full = fs::file_size(path);
  TruncateFile(path, full - 1);
  EXPECT_EQ(MappedSnapshot::Map(path, &error), nullptr);
  TruncateFile(path, kSnapshotHeaderBytes / 2);  // even the header is torn
  EXPECT_EQ(MappedSnapshot::Map(path, &error), nullptr);
}

TEST(SnapshotFormat, MapNewestValidWalksPastTornFilesAndTmpOrphans) {
  const std::string dir = ScratchDir("snap_newest");
  const FittedShard shard;
  std::string error;
  // Version 5: valid. Version 9: torn mid-write. Plus a ".tmp" orphan from
  // a writer that lost the rename race.
  ASSERT_TRUE(WriteSnapshotFile(dir + "/" + SnapshotFileName(5),
                                shard.Request(5, 2), &error))
      << error;
  ASSERT_TRUE(WriteSnapshotFile(dir + "/" + SnapshotFileName(9),
                                shard.Request(9, 4), &error))
      << error;
  TruncateFile(dir + "/" + SnapshotFileName(9), kSnapshotHeaderBytes + 100);
  WriteFile(dir + "/" + SnapshotFileName(11) + ".tmp", "partial write");

  const std::vector<std::string> files = ListSnapshotFiles(dir);
  ASSERT_EQ(files.size(), 2u);  // the .tmp orphan is not a snapshot
  EXPECT_NE(files[0].find(SnapshotFileName(9)), std::string::npos);

  auto mapped = MapNewestValid(dir, &error);
  ASSERT_NE(mapped, nullptr) << error;
  EXPECT_EQ(mapped->header().snapshot_version, 5u);

  // An empty or missing directory is a clean miss, not an error crash.
  EXPECT_EQ(MapNewestValid(dir + "/does_not_exist", &error), nullptr);
}

TEST(SnapshotFormat, GridImageRestoreReproducesSearchAndReimagesBitEqual) {
  const FittedShard shard;
  serving::SpatialIndex restored;
  restored.Restore(shard.grid);

  EXPECT_EQ(restored.num_cells(), shard.index.num_cells());
  EXPECT_EQ(restored.num_refs(), shard.index.num_refs());
  const GridImage reimaged = restored.Image();
  EXPECT_EQ(reimaged.slot, shard.grid.slot);
  EXPECT_EQ(reimaged.cell_offsets, shard.grid.cell_offsets);
  EXPECT_EQ(reimaged.members, shard.grid.members);
  EXPECT_EQ(reimaged.centroids, shard.grid.centroids);
  EXPECT_EQ(reimaged.radii, shard.grid.radii);

  const la::Matrix queries =
      serving::MakeSyntheticQueries(shard.map, 12, 0.25, 77);
  for (size_t i = 0; i < queries.rows(); ++i) {
    const std::vector<double> q = serving::MatrixRow(queries, i);
    const auto expected = serving::BruteForceKnn(shard.knn.features(), q, 4);
    const auto got = restored.Search(shard.knn.features(), q, 4);
    ASSERT_EQ(expected.size(), got.size()) << "row " << i;
    for (size_t n = 0; n < expected.size(); ++n) {
      EXPECT_EQ(expected[n].first, got[n].first);
      EXPECT_EQ(expected[n].second, got[n].second);
    }
  }
}

// ------------------------------------------------------------------ WAL --

std::vector<rmap::Record> MakeWalRecords(size_t count, size_t width) {
  std::vector<rmap::Record> records;
  for (size_t i = 0; i < count; ++i) records.push_back(MakeRecord(width, i));
  return records;
}

TEST(Wal, ReplaysAppendsInOrderAcrossReopen) {
  const std::string dir = ScratchDir("wal_replay");
  const std::vector<rmap::Record> records = MakeWalRecords(10, 7);
  std::string error;
  {
    Wal::ReplayResult replay;
    auto wal = Wal::Open(dir, 0, {.sync_every = 4}, &replay, &error);
    ASSERT_NE(wal, nullptr) << error;
    EXPECT_TRUE(replay.records.empty());
    EXPECT_EQ(wal->active_segment(), 1u);
    for (const rmap::Record& r : records) {
      ASSERT_TRUE(wal->Append(r, &error)) << error;
    }
  }  // dtor syncs the group-commit tail

  Wal::ReplayResult replay;
  auto wal = Wal::Open(dir, 0, {}, &replay, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(replay.segments_replayed, 1u);
  EXPECT_EQ(replay.segments_deleted, 0u);
  EXPECT_FALSE(replay.tail_truncated);
  EXPECT_FALSE(replay.corrupt_frame);
  ASSERT_EQ(replay.records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], replay.records[i]);
  }
  // A reopened log appends to a *fresh* segment, never a pre-existing one.
  EXPECT_EQ(wal->active_segment(), 2u);
}

TEST(Wal, WatermarkDeletesSealedSegmentsAndReplaysTheRest) {
  const std::string dir = ScratchDir("wal_watermark");
  const std::vector<rmap::Record> records = MakeWalRecords(6, 5);
  std::string error;
  uint64_t watermark = 0;
  {
    Wal::ReplayResult replay;
    auto wal = Wal::Open(dir, 0, {}, &replay, &error);
    ASSERT_NE(wal, nullptr) << error;
    // Segment 1: records 0..2. Rotate (the publish step). Segment 2: 3..5.
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal->Append(records[i], &error)) << error;
    }
    watermark = wal->Rotate(&error);
    ASSERT_EQ(watermark, 2u) << error;
    for (size_t i = 3; i < 6; ++i) {
      ASSERT_TRUE(wal->Append(records[i], &error)) << error;
    }
  }

  // Restart with the snapshot's watermark: the sealed segment below it is
  // deleted (those records live in the snapshot's base section) and only
  // the post-rotation records replay.
  Wal::ReplayResult replay;
  auto wal = Wal::Open(dir, watermark, {}, &replay, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(replay.segments_deleted, 1u);
  ASSERT_EQ(replay.records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ExpectRecordsEqual(records[3 + i], replay.records[i]);
  }
  EXPECT_FALSE(fs::exists(fs::path(dir) / WalSegmentFileName(1)));
}

TEST(Wal, TornTailIsToleratedCrcFailureIsFlagged) {
  const std::string dir = ScratchDir("wal_torn");
  const std::vector<rmap::Record> records = MakeWalRecords(5, 6);
  std::string error;
  {
    Wal::ReplayResult replay;
    auto wal = Wal::Open(dir, 0, {}, &replay, &error);
    ASSERT_NE(wal, nullptr) << error;
    for (const rmap::Record& r : records) {
      ASSERT_TRUE(wal->Append(r, &error)) << error;
    }
  }
  const std::string segment =
      (fs::path(dir) / WalSegmentFileName(1)).string();

  // Crash mid-append: shear a few bytes off the tail. Replay recovers
  // every complete frame and flags the torn (not corrupt) tail.
  TruncateFile(segment, fs::file_size(segment) - 3);
  {
    Wal::ReplayResult replay;
    auto wal = Wal::Open(dir, 0, {}, &replay, &error);
    ASSERT_NE(wal, nullptr) << error;
    EXPECT_TRUE(replay.tail_truncated);
    EXPECT_FALSE(replay.corrupt_frame);
    ASSERT_EQ(replay.records.size(), records.size() - 1);
    for (size_t i = 0; i + 1 < records.size(); ++i) {
      ExpectRecordsEqual(records[i], replay.records[i]);
    }
  }

  // Bit rot mid-segment: a CRC-failed frame with a plausible header stops
  // that segment's replay and is flagged as corruption.
  const std::string segment2 =
      (fs::path(dir) / WalSegmentFileName(1)).string();
  std::string frame0;
  AppendRecordFrame(records[0], &frame0);
  FlipByte(segment2, kWalHeaderBytes + frame0.size() + kFrameHeaderBytes + 2);
  {
    Wal::ReplayResult replay;
    auto wal = Wal::Open(dir, 0, {}, &replay, &error);
    ASSERT_NE(wal, nullptr) << error;
    EXPECT_TRUE(replay.corrupt_frame);
    ASSERT_EQ(replay.records.size(), 1u);  // only the frame before the rot
    ExpectRecordsEqual(records[0], replay.records[0]);
  }
}

TEST(Wal, HeaderlessStubSegmentIsATornTail) {
  const std::string dir = ScratchDir("wal_stub");
  std::string error;
  {
    Wal::ReplayResult replay;
    auto wal = Wal::Open(dir, 0, {}, &replay, &error);
    ASSERT_NE(wal, nullptr) << error;
    ASSERT_TRUE(wal->Append(MakeRecord(4, 1), &error)) << error;
  }
  // A crash immediately after segment creation leaves a short stub.
  TruncateFile((fs::path(dir) / WalSegmentFileName(1)).string(),
               kWalHeaderBytes / 2);

  Wal::ReplayResult replay;
  auto wal = Wal::Open(dir, 0, {}, &replay, &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_TRUE(replay.tail_truncated);
  EXPECT_FALSE(replay.corrupt_frame);
  EXPECT_TRUE(replay.records.empty());
}

}  // namespace
}  // namespace rmi::store
