#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/missing.h"
#include "imputers/autocorrelation.h"
#include "imputers/imputer.h"
#include "imputers/neural.h"
#include "imputers/traditional.h"

namespace rmi::imputers {
namespace {

/// Small two-path synthetic map: a smooth RSSI ramp per path, periodic RPs,
/// scattered MARs, and one all-MNAR AP column.
rmap::RadioMap ToyMap() {
  rmap::RadioMap map(4);
  for (size_t p = 0; p < 2; ++p) {
    for (int t = 0; t < 12; ++t) {
      rmap::Record r;
      const double base = -40.0 - 2.0 * t;
      r.rssi = {base, base - 10, base - 20, kNull};  // AP3 never observed
      if (t % 4 == 1) r.rssi[0] = kNull;             // MARs on AP0
      if (t % 5 == 2) r.rssi[1] = kNull;             // MARs on AP1
      r.has_rp = (t % 3 == 0);
      r.rp = {static_cast<double>(t), static_cast<double>(p) * 5.0};
      r.time = 2.0 * t;
      r.path_id = p;
      map.Add(r);
    }
  }
  return map;
}

/// Mask: AP3 = MNAR everywhere missing; other missing = MAR.
rmap::MaskMatrix ToyMask(const rmap::RadioMap& map) {
  rmap::MaskMatrix mask(map.size(), map.num_aps());
  for (size_t i = 0; i < map.size(); ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      if (!IsNull(map.record(i).rssi[j])) continue;
      mask.set(i, j, j == 3 ? rmap::MaskValue::kMnar : rmap::MaskValue::kMar);
    }
  }
  return mask;
}

TEST(FillMnarTest, FillsAndAmends) {
  auto map = ToyMap();
  auto mask = ToyMask(map);
  const size_t mnars_before = mask.CountOf(rmap::MaskValue::kMnar);
  EXPECT_EQ(mnars_before, map.size());  // one MNAR column
  const size_t filled = FillMnar(&map, &mask);
  EXPECT_EQ(filled, mnars_before);
  EXPECT_EQ(mask.CountOf(rmap::MaskValue::kMnar), 0u);
  for (size_t i = 0; i < map.size(); ++i) {
    EXPECT_DOUBLE_EQ(map.record(i).rssi[3], kMnarFillDbm);
  }
  // MARs untouched.
  EXPECT_GT(mask.CountOf(rmap::MaskValue::kMar), 0u);
}

/// Contract shared by every imputer: complete output, observed preserved.
void CheckContract(const Imputer& imputer, bool may_delete = false) {
  auto map = ToyMap();
  auto mask = ToyMask(map);
  FillMnar(&map, &mask);
  Rng rng(1);
  const auto out = imputer.Impute(map, mask, rng);
  if (may_delete) {
    EXPECT_LE(out.size(), map.size());
    EXPECT_GT(out.size(), 0u);
  } else {
    EXPECT_EQ(out.size(), map.size());
  }
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out.record(i).has_rp) << imputer.name();
    for (double v : out.record(i).rssi) {
      EXPECT_FALSE(IsNull(v)) << imputer.name();
      EXPECT_GE(v, -100.0) << imputer.name();
      EXPECT_LE(v, 0.0) << imputer.name();
    }
  }
  // Observed values preserved (record 0, AP2 = -60 in path 0).
  for (size_t i = 0; i < out.size(); ++i) {
    const auto& orig = map.record(0);
    if (out.record(i).id == orig.id) {
      EXPECT_DOUBLE_EQ(out.record(i).rssi[2], orig.rssi[2]) << imputer.name();
    }
  }
}

TEST(ContractTest, CaseDeletion) { CheckContract(CaseDeletionImputer(), true); }
TEST(ContractTest, LinearInterpolation) {
  CheckContract(LinearInterpolationImputer());
}
TEST(ContractTest, SemiSupervised) { CheckContract(SemiSupervisedImputer()); }
TEST(ContractTest, Mice) { CheckContract(MiceImputer()); }
TEST(ContractTest, MatrixFactorization) {
  MatrixFactorizationImputer::Params p;
  p.max_epochs = 30;
  CheckContract(MatrixFactorizationImputer(p));
}
TEST(ContractTest, Brits) {
  NeuralParams p;
  p.epochs = 3;
  p.hidden = 8;
  CheckContract(BritsImputer(p));
}
TEST(ContractTest, Ssgan) {
  SsganImputer::Params p;
  p.epochs = 3;
  p.hidden = 8;
  CheckContract(SsganImputer(p));
}

TEST(CaseDeletionTest, DropsExactlyNullRpRecords) {
  auto map = ToyMap();
  auto mask = ToyMask(map);
  FillMnar(&map, &mask);
  size_t with_rp = 0;
  for (size_t i = 0; i < map.size(); ++i) with_rp += map.record(i).has_rp;
  Rng rng(2);
  const auto out = CaseDeletionImputer().Impute(map, mask, rng);
  EXPECT_EQ(out.size(), with_rp);
}

TEST(CaseDeletionTest, FillsMissingWithFloor) {
  auto map = ToyMap();
  auto mask = ToyMask(map);
  FillMnar(&map, &mask);
  Rng rng(3);
  const auto out = CaseDeletionImputer().Impute(map, mask, rng);
  // Record 0 path 0: t=0, AP0 observed; find a record whose AP0 was MAR.
  bool saw_floor = false;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.record(i).rssi[0] == kMnarFillDbm) saw_floor = true;
  }
  EXPECT_TRUE(saw_floor);
}

TEST(LinearInterpolationTest, InterpolatesAlongPathTime) {
  rmap::RadioMap map(1);
  auto add = [&](bool has_rp, double x, double t) {
    rmap::Record r;
    r.rssi = {-50.0};
    r.has_rp = has_rp;
    if (has_rp) r.rp = {x, 0.0};
    r.time = t;
    map.Add(r);
  };
  add(true, 0.0, 0.0);
  add(false, 0, 5.0);
  add(true, 10.0, 10.0);
  Rng rng(4);
  const auto out = LinearInterpolationImputer().Impute(map, {}, rng);
  EXPECT_DOUBLE_EQ(out.record(1).rp.x, 5.0);
}

TEST(SemiSupervisedTest, NearbyFingerprintsGetNearbyRps) {
  // Unlabeled record has a fingerprint identical to a labeled one: SL must
  // place it at (almost) the same RP.
  rmap::RadioMap map(2);
  auto add = [&](std::vector<double> rssi, bool has_rp, double x, double t) {
    rmap::Record r;
    r.rssi = std::move(rssi);
    r.has_rp = has_rp;
    if (has_rp) r.rp = {x, 0.0};
    r.time = t;
    map.Add(r);
  };
  add({-40, -80}, true, 1.0, 0);
  add({-41, -79}, true, 1.2, 1);
  add({-80, -40}, true, 9.0, 2);
  add({-81, -41}, true, 9.2, 3);
  add({-40.5, -79.5}, false, 0, 4);  // clone of the first group
  Rng rng(5);
  const auto out = SemiSupervisedImputer(/*k=*/2, /*rounds=*/2)
                       .Impute(map, {}, rng);
  EXPECT_NEAR(out.record(4).rp.x, 1.1, 0.5);
}

TEST(MiceTest, RecoversCorrelatedColumn) {
  // AP1 = AP0 - 10 exactly; MICE must recover removed AP1 cells closely.
  rmap::RadioMap map(2);
  Rng gen(6);
  for (int i = 0; i < 40; ++i) {
    rmap::Record r;
    const double v = -40.0 - gen.Uniform(0, 30);
    r.rssi = {v, v - 10};
    r.has_rp = true;
    r.rp = {gen.Uniform(0, 10), 0};
    r.time = i;
    map.Add(r);
  }
  // Remove some AP1 values.
  std::vector<std::pair<size_t, double>> truth;
  for (size_t i = 0; i < map.size(); i += 4) {
    truth.emplace_back(i, map.record(i).rssi[1]);
    map.record(i).rssi[1] = kNull;
  }
  rmap::MaskMatrix mask(map.size(), 2);
  for (auto& [i, v] : truth) mask.set(i, 1, rmap::MaskValue::kMar);
  Rng rng(7);
  const auto out = MiceImputer().Impute(map, mask, rng);
  for (auto& [i, v] : truth) {
    EXPECT_NEAR(out.record(i).rssi[1], v, 3.0);
  }
}

TEST(MatrixFactorizationTest, RecoversLowRankStructure) {
  // Rank-1 matrix with 30% of cells removed: MF should reconstruct well.
  rmap::RadioMap map(6);
  Rng gen(8);
  std::vector<double> col = {1.0, 0.8, 0.6, 0.9, 0.7, 0.5};
  std::vector<std::tuple<size_t, size_t, double>> truth;
  for (int i = 0; i < 50; ++i) {
    rmap::Record r;
    const double row = 0.5 + gen.Uniform(0, 0.5);
    r.rssi.resize(6);
    for (size_t j = 0; j < 6; ++j) r.rssi[j] = -80.0 + 40.0 * row * col[j];
    r.has_rp = true;
    r.rp = {gen.Uniform(0, 10), 0};
    r.time = i;
    map.Add(r);
  }
  Rng rm(9);
  auto removed = rmap::RemoveRandomRssis(&map, 0.3, rm);
  rmap::MaskMatrix mask(map.size(), 6);
  for (const auto& cell : removed) {
    mask.set(cell.record, cell.ap, rmap::MaskValue::kMar);
  }
  MatrixFactorizationImputer::Params p;
  p.max_epochs = 200;
  Rng rng(10);
  const auto out = MatrixFactorizationImputer(p).Impute(map, mask, rng);
  double mae = 0;
  for (const auto& cell : removed) {
    mae += std::fabs(out.record(cell.record).rssi[cell.ap] - cell.value);
  }
  mae /= static_cast<double>(removed.size());
  EXPECT_LT(mae, 4.0);
}

TEST(BritsTest, ImputesSmoothSeriesBetterThanFloorFill) {
  // RSSI ramps smoothly along the path; BRITS' imputations of removed cells
  // must beat the naive -100 fill by a wide margin.
  rmap::RadioMap map(2);
  for (size_t p = 0; p < 4; ++p) {
    for (int t = 0; t < 10; ++t) {
      rmap::Record r;
      const double v = -45.0 - 1.5 * t;
      r.rssi = {v, v - 8};
      r.has_rp = true;
      r.rp = {double(t), double(p)};
      r.time = 2.0 * t;
      r.path_id = p;
      map.Add(r);
    }
  }
  Rng rm(11);
  auto removed = rmap::RemoveRandomRssis(&map, 0.2, rm);
  rmap::MaskMatrix mask(map.size(), 2);
  for (const auto& cell : removed) {
    mask.set(cell.record, cell.ap, rmap::MaskValue::kMar);
  }
  NeuralParams np;
  np.epochs = 60;
  np.hidden = 12;
  np.batch_size = 4;
  Rng rng(12);
  const auto out = BritsImputer(np).Impute(map, mask, rng);
  double mae = 0, floor_mae = 0;
  for (const auto& cell : removed) {
    mae += std::fabs(out.record(cell.record).rssi[cell.ap] - cell.value);
    floor_mae += std::fabs(-100.0 - cell.value);
  }
  EXPECT_LT(mae, 0.5 * floor_mae);
}

TEST(SsganTest, TrainsWithoutDivergence) {
  auto map = ToyMap();
  auto mask = ToyMask(map);
  FillMnar(&map, &mask);
  SsganImputer::Params p;
  p.epochs = 5;
  p.hidden = 8;
  Rng rng(13);
  const auto out = SsganImputer(p).Impute(map, mask, rng);
  for (size_t i = 0; i < out.size(); ++i) {
    for (double v : out.record(i).rssi) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(NamesTest, AllImputersReportPaperNames) {
  EXPECT_EQ(CaseDeletionImputer().name(), "CD");
  EXPECT_EQ(LinearInterpolationImputer().name(), "LI");
  EXPECT_EQ(SemiSupervisedImputer().name(), "SL");
  EXPECT_EQ(MiceImputer().name(), "MICE");
  EXPECT_EQ(MatrixFactorizationImputer().name(), "MF");
  EXPECT_EQ(BritsImputer().name(), "BRITS");
  EXPECT_EQ(SsganImputer().name(), "SSGAN");
}

/// The live-update loop's entry point: with no usable context the call is
/// exactly Impute on the merged map, and a context carrying the previous
/// imputation with *no* deltas re-splices it — either way every backend
/// works in serving::MapUpdater unchanged. (The dirty-row partial path is
/// covered by incremental_impute_test.cc.)
TEST(ImputeIncrementalTest, EmptyContextEqualsColdAndNoDeltasSplices) {
  auto map = ToyMap();
  auto mask = ToyMask(map);
  FillMnar(&map, &mask);
  const LinearInterpolationImputer li;
  const MiceImputer mice;
  for (const Imputer* imputer : {static_cast<const Imputer*>(&li),
                                 static_cast<const Imputer*>(&mice)}) {
    Rng cold_rng(9), warm_rng(9), none_rng(9);
    const auto cold = imputer->Impute(map, mask, cold_rng);
    IncrementalContext warm_ctx;  // previous imputation, zero delta rows
    warm_ctx.previous_imputed = &cold;
    warm_ctx.num_previous_records = map.size();
    const auto warm = imputer->ImputeIncremental(map, mask, warm_ctx, warm_rng);
    const auto none =
        imputer->ImputeIncremental(map, mask, IncrementalContext{}, none_rng);
    ASSERT_EQ(warm.size(), cold.size()) << imputer->name();
    ASSERT_EQ(none.size(), cold.size()) << imputer->name();
    for (size_t i = 0; i < cold.size(); ++i) {
      for (size_t j = 0; j < cold.num_aps(); ++j) {
        EXPECT_DOUBLE_EQ(warm.record(i).rssi[j], cold.record(i).rssi[j])
            << imputer->name() << " record " << i << " ap " << j;
        EXPECT_DOUBLE_EQ(none.record(i).rssi[j], cold.record(i).rssi[j])
            << imputer->name() << " record " << i << " ap " << j;
      }
    }
  }
}

}  // namespace
}  // namespace rmi::imputers
