// Epoch-based reclamation and the hot-path snapshot reads built on it:
//  * EpochDomain — pins defer reclamation, nested pins hold the outer
//    epoch, cross-thread pins gate the retire list, and the list drains
//    once readers go idle;
//  * MapSnapshotStore / ShardedSnapshotStore — PinnedRead sees the same
//    swap as Current, a reader pinned across many publishes never
//    observes a freed snapshot, and slow-path shared_ptr holders outlive
//    reclamation;
//  * ThreadPool — the work-stealing schedule runs every index exactly
//    once, the static schedule keeps its deterministic lane assignment,
//    and two concurrent submitters genuinely overlap;
//  * ShardRouter — the regression test for the removed pool mutex: two
//    threads inside LocalizeBatch at the same time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "positioning/estimators.h"
#include "serving/epoch.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/synthetic.h"

namespace rmi::serving {
namespace {

std::shared_ptr<const void> Tracked(std::weak_ptr<const int>* probe) {
  auto obj = std::make_shared<const int>(42);
  *probe = obj;
  return obj;
}

/// Two-party rendezvous with a timeout: Arrive() blocks until both sides
/// arrived, or flags failure after `timeout`. A deadlock-proof way to
/// assert two code paths are in flight simultaneously.
class Rendezvous {
 public:
  bool Arrive() {
    std::unique_lock<std::mutex> lock(mu_);
    if (++arrived_ >= 2) {
      cv_.notify_all();
      return true;
    }
    return cv_.wait_for(lock, std::chrono::seconds(10),
                        [&] { return arrived_ >= 2; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
};

TEST(EpochDomainTest, RetireWithoutReadersReclaimsImmediately) {
  EpochDomain domain;
  std::weak_ptr<const int> probe;
  domain.Retire(Tracked(&probe));
  EXPECT_EQ(domain.retired_count(), 0u);
  EXPECT_TRUE(probe.expired());
}

TEST(EpochDomainTest, PinDefersReclamationUntilRelease) {
  EpochDomain domain;
  std::weak_ptr<const int> probe;
  {
    const EpochDomain::Pin pin = domain.MakePin();
    domain.Retire(Tracked(&probe));
    EXPECT_EQ(domain.retired_count(), 1u);
    EXPECT_EQ(domain.ReclaimNow(), 1u);  // still pinned: nothing freed
    EXPECT_FALSE(probe.expired());
  }
  EXPECT_EQ(domain.ReclaimNow(), 0u);
  EXPECT_TRUE(probe.expired());
}

TEST(EpochDomainTest, NestedPinsHoldTheOuterEpoch) {
  EpochDomain domain;
  EXPECT_EQ(domain.PinnedEpochForTesting(), EpochDomain::kIdle);
  const EpochDomain::Pin outer = domain.MakePin();
  const uint64_t pinned = domain.PinnedEpochForTesting();
  ASSERT_NE(pinned, EpochDomain::kIdle);
  domain.Retire(std::make_shared<const int>(1));  // advances the epoch
  {
    const EpochDomain::Pin inner = domain.MakePin();
    EXPECT_EQ(domain.PinnedEpochForTesting(), pinned);
  }
  EXPECT_EQ(domain.PinnedEpochForTesting(), pinned);  // inner exit kept it
}

TEST(EpochDomainTest, PinOnAnotherThreadGatesReclamation) {
  EpochDomain domain;
  std::atomic<bool> release{false};
  std::atomic<bool> pinned{false};
  std::thread reader([&] {
    const EpochDomain::Pin pin = domain.MakePin();
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  std::weak_ptr<const int> probe;
  domain.Retire(Tracked(&probe));
  EXPECT_EQ(domain.ReclaimNow(), 1u);
  EXPECT_FALSE(probe.expired());
  release.store(true);
  reader.join();
  EXPECT_EQ(domain.ReclaimNow(), 0u);
  EXPECT_TRUE(probe.expired());
}

TEST(EpochDomainTest, OnePinDefersEveryLaterRetirement) {
  EpochDomain domain;
  std::vector<std::weak_ptr<const int>> probes(8);
  {
    const EpochDomain::Pin pin = domain.MakePin();
    for (std::weak_ptr<const int>& probe : probes) {
      domain.Retire(Tracked(&probe));
    }
    EXPECT_EQ(domain.retired_count(), probes.size());
    for (const std::weak_ptr<const int>& probe : probes) {
      EXPECT_FALSE(probe.expired());
    }
  }
  EXPECT_EQ(domain.ReclaimNow(), 0u);
  for (const std::weak_ptr<const int>& probe : probes) {
    EXPECT_TRUE(probe.expired());
  }
}

std::shared_ptr<const MapSnapshot> TestSnapshot(const rmap::RadioMap& map,
                                                uint64_t version,
                                                uint64_t seed) {
  Rng rng(seed);
  return BuildSnapshot(map,
                       std::make_unique<positioning::KnnEstimator>(3, true),
                       rng, SnapshotOptions{version, 6.0});
}

TEST(PinnedSnapshotTest, EmptyStoreYieldsNullHandle) {
  MapSnapshotStore store;
  const PinnedSnapshot snap = store.PinnedRead();
  EXPECT_FALSE(snap);
  EXPECT_EQ(snap.get(), nullptr);
}

TEST(PinnedSnapshotTest, PinnedReadAgreesWithCurrent) {
  const rmap::RadioMap map = MakeSyntheticServingMap(6, 5, 8, 3);
  MapSnapshotStore store(TestSnapshot(map, 1, 11));
  const PinnedSnapshot pinned = store.PinnedRead();
  ASSERT_TRUE(pinned);
  EXPECT_EQ(pinned.get(), store.Current().get());
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_TRUE(pinned->Consistent());
}

TEST(PinnedSnapshotTest, ReaderPinnedAcrossPublishesNeverSeesAFreedSnapshot) {
  const rmap::RadioMap map = MakeSyntheticServingMap(6, 5, 8, 3);
  auto first = TestSnapshot(map, 1, 11);
  std::weak_ptr<const MapSnapshot> probe = first;
  MapSnapshotStore store(std::move(first));

  const PinnedSnapshot pinned = store.PinnedRead();
  ASSERT_TRUE(pinned);
  for (uint64_t v = 2; v < 8; ++v) {
    store.Publish(TestSnapshot(map, v, 11 + v));
    // The pinned generation must stay fully intact through every swap.
    EXPECT_EQ(pinned->version, 1u);
    EXPECT_TRUE(pinned->Consistent());
    EXPECT_FALSE(probe.expired());
  }
  EXPECT_EQ(store.Current()->version, 7u);
}

TEST(PinnedSnapshotTest, RetiredGenerationsDrainOnceReadersUnpin) {
  const rmap::RadioMap map = MakeSyntheticServingMap(6, 5, 8, 3);
  auto first = TestSnapshot(map, 1, 11);
  std::weak_ptr<const MapSnapshot> probe = first;
  MapSnapshotStore store(std::move(first));
  {
    const PinnedSnapshot pinned = store.PinnedRead();
    store.Publish(TestSnapshot(map, 2, 12));
    EXPECT_FALSE(probe.expired());
  }
  // Reader gone: the displaced snapshot is reclaimable now. (The global
  // domain is shared, so only our probe — not retired_count — is
  // meaningful here.)
  EpochDomain::Global().ReclaimNow();
  EXPECT_TRUE(probe.expired());
}

TEST(PinnedSnapshotTest, SlowPathSharedPtrHoldersOutliveReclamation) {
  const rmap::RadioMap map = MakeSyntheticServingMap(6, 5, 8, 3);
  MapSnapshotStore store(TestSnapshot(map, 1, 11));
  std::shared_ptr<const MapSnapshot> held = store.Current();
  std::weak_ptr<const MapSnapshot> probe = held;

  store.Publish(TestSnapshot(map, 2, 12));
  EpochDomain::Global().ReclaimNow();  // no pins: the retired entry drops
  // The epoch domain released its reference, but the slow-path holder
  // still owns the snapshot.
  EXPECT_FALSE(probe.expired());
  EXPECT_TRUE(held->Consistent());
  held.reset();
  EXPECT_TRUE(probe.expired());
}

TEST(ShardedStoreTest, PinnedResolvesShardsAndUnknownIsNull) {
  const rmap::RadioMap map = MakeSyntheticServingMap(6, 5, 8, 3);
  ShardedSnapshotStore store;
  const rmap::ShardId a{0, 0}, b{0, 1}, unknown{9, 9};
  store.Publish(a, TestSnapshot(map, 1, 11));
  store.Publish(b, TestSnapshot(map, 2, 12));

  const PinnedSnapshot snap_a = store.Pinned(a);
  ASSERT_TRUE(snap_a);
  EXPECT_EQ(snap_a->version, 1u);
  EXPECT_EQ(snap_a.get(), store.Current(a).get());
  EXPECT_FALSE(store.Pinned(unknown));
}

TEST(ShardedStoreTest, PinnedSnapshotSurvivesRoutingTableSwaps) {
  const rmap::RadioMap map = MakeSyntheticServingMap(6, 5, 8, 3);
  ShardedSnapshotStore store;
  const rmap::ShardId a{0, 0};
  store.Publish(a, TestSnapshot(map, 1, 11));
  const PinnedSnapshot pinned = store.Pinned(a);
  ASSERT_TRUE(pinned);
  // Every first publish to a new shard swaps (and retires) the routing
  // table; the pinned snapshot must ride through all of them.
  for (int f = 1; f <= 5; ++f) {
    store.Publish(rmap::ShardId{1, f}, TestSnapshot(map, 10 + f, 20 + f));
    EXPECT_EQ(pinned->version, 1u);
    EXPECT_TRUE(pinned->Consistent());
  }
}

TEST(PinnedSnapshotTest, ConcurrentPublishesAndPinnedReadersStayConsistent) {
  const rmap::RadioMap map = MakeSyntheticServingMap(8, 6, 10, 3);
  MapSnapshotStore store(TestSnapshot(map, 1, 11));
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const PinnedSnapshot snap = store.PinnedRead();
        if (!snap || !snap->Consistent() || snap->num_refs() == 0) {
          ok.store(false);
          return;
        }
      }
    });
  }
  auto even = TestSnapshot(map, 2, 12);
  auto odd = TestSnapshot(map, 3, 13);
  for (int i = 0; i < 100; ++i) {
    store.Publish(i % 2 == 0 ? even : odd);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, DynamicScheduleRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  for (std::atomic<int>& h : hits) h.store(0);
  pool.ParallelForDynamic(count, [&](size_t /*slot*/, size_t i) {
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, StaticScheduleKeepsLaneAssignmentDeterministic) {
  ThreadPool pool(3);
  if (pool.num_threads() != 3) GTEST_SKIP() << "pool forced inline";
  const size_t count = 20;
  std::vector<size_t> lane_of(count, size_t{999});
  pool.ParallelFor(count, [&](size_t lane, size_t i) { lane_of[i] = lane; });
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(lane_of[i], i % 3) << "index " << i;
  }
}

TEST(ThreadPoolTest, ConcurrentSubmittersOverlapInsteadOfSerializing) {
  // Each submitter participates in its own job, so both bodies are in
  // flight at once even on a minimal pool — the rendezvous only releases
  // when the two jobs meet mid-execution.
  ThreadPool pool(2);
  Rendezvous rendezvous;
  std::atomic<int> met{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 2; ++s) {
    submitters.emplace_back([&] {
      pool.ParallelForDynamic(1, [&](size_t, size_t) {
        if (rendezvous.Arrive()) met.fetch_add(1);
      });
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(met.load(), 2);
}

TEST(ThreadPoolTest, NestedPoolsCollapseToInline) {
  ThreadPool outer(2);
  std::atomic<size_t> inner_width{999};
  outer.ParallelFor(1, [&](size_t, size_t) {
    ThreadPool inner(4);
    inner_width.store(inner.num_threads());
  });
  EXPECT_EQ(inner_width.load(), 1u);
}

/// An estimator whose batched path blocks on a rendezvous — the probe for
/// the LocalizeBatch overlap regression (the old router serialized
/// concurrent batches behind a pool mutex, which would deadlock this).
class BlockingEstimator : public positioning::LocationEstimator {
 public:
  BlockingEstimator(Rendezvous* rendezvous, std::atomic<int>* met)
      : rendezvous_(rendezvous), met_(met) {}

  void Fit(const rmap::RadioMap&, Rng&) override {}
  geom::Point Estimate(const std::vector<double>&) const override {
    return {0.0, 0.0};
  }
  std::vector<geom::Point> EstimateBatch(
      const la::Matrix& fingerprints) const override {
    if (rendezvous_->Arrive()) met_->fetch_add(1);
    return std::vector<geom::Point>(fingerprints.rows());
  }
  std::string name() const override { return "Blocking"; }
  std::unique_ptr<LocationEstimator> Clone() const override {
    return std::make_unique<BlockingEstimator>(rendezvous_, met_);
  }

 private:
  Rendezvous* rendezvous_;
  std::atomic<int>* met_;
};

TEST(ShardRouterTest, ConcurrentLocalizeBatchCallsOverlap) {
  const rmap::RadioMap map = MakeSyntheticServingMap(6, 5, 8, 3);
  Rendezvous rendezvous;
  std::atomic<int> met{0};
  ShardedSnapshotStore store;
  const rmap::ShardId a{0, 0}, b{0, 1};
  for (const rmap::ShardId& id : {a, b}) {
    Rng rng(7);
    store.Publish(id, BuildSnapshot(
                          map,
                          std::make_unique<BlockingEstimator>(&rendezvous, &met),
                          rng, SnapshotOptions{1, 6.0}));
  }
  const ShardRouter router(&store, 2);
  const la::Matrix queries = MakeSyntheticQueries(map, 4, 0.0, 21);

  std::vector<std::thread> callers;
  for (const rmap::ShardId id : {a, b}) {
    callers.emplace_back([&, id] {
      const std::vector<std::optional<rmap::ShardId>> hints(queries.rows(), id);
      router.LocalizeBatch(queries, hints);
    });
  }
  for (std::thread& t : callers) t.join();
  // Both batches reached EstimateBatch while the other was still inside
  // it; a serialized router would have timed out the rendezvous instead.
  EXPECT_EQ(met.load(), 2);
}

}  // namespace
}  // namespace rmi::serving
