#include <gtest/gtest.h>

#include <cmath>

#include "bisim/bisim.h"
#include "common/missing.h"
#include "eval/metrics.h"

namespace rmi::bisim {
namespace {

/// Small smooth training map: two APs with complementary linear ramps.
rmap::RadioMap TrainingMap() {
  rmap::RadioMap map(2);
  for (size_t p = 0; p < 6; ++p) {
    for (int t = 0; t < 10; ++t) {
      rmap::Record r;
      r.rssi = {-40.0 - 2.0 * t, -60.0 + 1.5 * t};
      if (t % 4 == 2) r.rssi[1] = kNull;  // some MARs
      r.has_rp = (t % 2 == 0);
      r.rp = {static_cast<double>(t), static_cast<double>(p)};
      r.time = 2.0 * t;
      r.path_id = p;
      map.Add(r);
    }
  }
  return map;
}

rmap::MaskMatrix MaskOf(const rmap::RadioMap& map) {
  rmap::MaskMatrix mask(map.size(), map.num_aps());
  for (size_t i = 0; i < map.size(); ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      if (IsNull(map.record(i).rssi[j])) {
        mask.set(i, j, rmap::MaskValue::kMar);
      }
    }
  }
  return mask;
}

BiSimConfig SmallConfig() {
  BiSimConfig cfg;
  cfg.hidden = 10;
  cfg.attention_hidden = 10;
  cfg.epochs = 25;
  cfg.loc_scale = 0.1;
  return cfg;
}

TEST(OnlineBiSimImputerTest, CompletesOnlineFingerprint) {
  const auto map = TrainingMap();
  OnlineBiSimImputer imputer(SmallConfig());
  EXPECT_FALSE(imputer.fitted());
  Rng rng(1);
  imputer.Fit(map, MaskOf(map), rng);
  ASSERT_TRUE(imputer.fitted());

  OnlineBiSimImputer::TimedScan scan;
  scan.rssi = {-50.0, kNull};
  scan.time = 0.0;
  const auto completed = imputer.ImputeFingerprint(scan);
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_DOUBLE_EQ(completed[0], -50.0);  // observed preserved
  EXPECT_FALSE(IsNull(completed[1]));
  EXPECT_GE(completed[1], -100.0);
  EXPECT_LE(completed[1], 0.0);
}

TEST(OnlineBiSimImputerTest, ImputationIsInformedByTraining) {
  // AP1 = -60 + 1.5 t where AP0 = -40 - 2 t: given AP0 = -50 (t = 5),
  // AP1 should be near -52.5, far from the -100 floor.
  const auto map = TrainingMap();
  OnlineBiSimImputer imputer(SmallConfig());
  Rng rng(2);
  imputer.Fit(map, MaskOf(map), rng);
  OnlineBiSimImputer::TimedScan scan;
  scan.rssi = {-50.0, kNull};
  const auto completed = imputer.ImputeFingerprint(scan);
  EXPECT_GT(completed[1], -75.0);
  EXPECT_LT(completed[1], -35.0);
}

TEST(OnlineBiSimImputerTest, RecentScansProvideContext) {
  const auto map = TrainingMap();
  OnlineBiSimImputer imputer(SmallConfig());
  Rng rng(3);
  imputer.Fit(map, MaskOf(map), rng);
  OnlineBiSimImputer::TimedScan online;
  online.rssi = {kNull, kNull};  // device heard nothing this instant
  online.time = 6.0;
  std::vector<OnlineBiSimImputer::TimedScan> recent = {
      {{-44.0, -57.0}, 2.0},
      {{-48.0, -54.0}, 4.0},
  };
  const auto with_ctx = imputer.ImputeFingerprint(online, recent);
  ASSERT_EQ(with_ctx.size(), 2u);
  for (double v : with_ctx) {
    EXPECT_FALSE(IsNull(v));
  }
  // With strong recent context near -46, the imputed AP0 should sit in a
  // plausible band rather than at the floor.
  EXPECT_GT(with_ctx[0], -90.0);
}

TEST(OnlineBiSimImputerTest, FullyObservedScanUnchanged) {
  const auto map = TrainingMap();
  OnlineBiSimImputer imputer(SmallConfig());
  Rng rng(4);
  imputer.Fit(map, MaskOf(map), rng);
  OnlineBiSimImputer::TimedScan scan;
  scan.rssi = {-42.0, -58.0};
  const auto completed = imputer.ImputeFingerprint(scan);
  EXPECT_DOUBLE_EQ(completed[0], -42.0);
  EXPECT_DOUBLE_EQ(completed[1], -58.0);
}

TEST(ErrorCdfTest, SummarizesPercentiles) {
  std::vector<double> errors;
  for (int i = 1; i <= 100; ++i) errors.push_back(static_cast<double>(i));
  const eval::ErrorCdf cdf = eval::SummarizeErrors(errors);
  EXPECT_NEAR(cdf.mean, 50.5, 1e-9);
  EXPECT_NEAR(cdf.p50, 50.5, 1e-9);
  EXPECT_NEAR(cdf.p90, 90.1, 0.2);
  EXPECT_DOUBLE_EQ(cdf.max, 100.0);
  EXPECT_LE(cdf.p50, cdf.p75);
  EXPECT_LE(cdf.p75, cdf.p90);
  EXPECT_LE(cdf.p90, cdf.p95);
  EXPECT_LE(cdf.p95, cdf.max);
}

TEST(ErrorCdfTest, EmptyIsZero) {
  const eval::ErrorCdf cdf = eval::SummarizeErrors({});
  EXPECT_DOUBLE_EQ(cdf.mean, 0.0);
  EXPECT_DOUBLE_EQ(cdf.max, 0.0);
}

}  // namespace
}  // namespace rmi::bisim
