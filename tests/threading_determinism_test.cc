// Determinism of the data-parallel training path and the workspace arena:
//  * TrainBiSim with num_threads=1 vs num_threads=4 agrees on a fixed seed
//    (same Adam step count, same shuffles; gradients differ only by
//    floating-point reassociation of the per-thread shard merge);
//  * a fixed (seed, num_threads) pair is byte-stable run-to-run, including
//    through OnlineBiSimImputer::ImputeFingerprint;
//  * steady-state training epochs perform no fresh matrix allocations
//    (the Workspace pool serves every tape buffer after warm-up).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "autodiff/workspace.h"
#include "bisim/bisim.h"
#include "common/missing.h"

namespace rmi::bisim {
namespace {

/// Small synthetic multi-path radio map with MAR holes and some null RPs.
rmap::RadioMap SyntheticMap() {
  rmap::RadioMap map(4);
  for (int p = 0; p < 4; ++p) {
    for (int t = 0; t < 12; ++t) {
      rmap::Record r;
      const double base = -55.0 - 2.0 * p + 1.5 * t;
      r.rssi = {base, base - 6, base - 11, kNull};
      if ((t + p) % 3 == 0) r.rssi[0] = kNull;
      if ((t + p) % 4 == 0) r.rssi[1] = kNull;
      r.has_rp = (t % 2 == 0);
      r.rp = {double(t) + 0.3 * p, double(p)};
      r.time = 2.0 * t;
      r.path_id = p;
      map.Add(r);
    }
  }
  return map;
}

rmap::MaskMatrix MarMask(const rmap::RadioMap& map) {
  rmap::MaskMatrix mask(map.size(), map.num_aps());
  for (size_t i = 0; i < map.size(); ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      if (IsNull(map.record(i).rssi[j])) {
        mask.set(i, j, rmap::MaskValue::kMar);
      }
    }
  }
  return mask;
}

BiSimConfig SmallConfig(size_t num_threads) {
  BiSimConfig cfg;
  cfg.hidden = 8;
  cfg.attention_hidden = 8;
  cfg.epochs = 6;
  cfg.loc_scale = 0.1;
  cfg.time_scale = 1.0;
  cfg.num_threads = num_threads;
  return cfg;
}

double TrainWithThreads(size_t num_threads, double* first_loss = nullptr) {
  const auto map = SyntheticMap();
  const auto mask = MarMask(map);
  BiSimConfig cfg = SmallConfig(num_threads);
  Rng rng(cfg.seed);
  BiSimModel model(map.num_aps(), cfg, rng);
  const auto seqs = BuildSequences(map, mask, cfg);
  if (first_loss != nullptr) {
    *first_loss = model.Forward(seqs[0], true).loss.value()(0, 0);
  }
  Rng train_rng(33);
  return TrainBiSim(model, seqs, cfg, train_rng);
}

TEST(ThreadingDeterminismTest, SerialAndFourThreadLossesAgree) {
  double first1 = 0.0, first4 = 0.0;
  const double loss1 = TrainWithThreads(1, &first1);
  const double loss4 = TrainWithThreads(4, &first4);
  // Identical models before training (the fan-out must not perturb
  // initialization or sequence building).
  EXPECT_DOUBLE_EQ(first1, first4);
  // After training: same batches, same step count; only the gradient
  // merge order differs, so losses agree to reassociation tolerance.
  EXPECT_TRUE(std::isfinite(loss1));
  EXPECT_TRUE(std::isfinite(loss4));
  EXPECT_NEAR(loss1, loss4, 1e-6 * (1.0 + std::fabs(loss1)));
}

TEST(ThreadingDeterminismTest, FixedThreadCountIsRunToRunIdentical) {
  const double a = TrainWithThreads(4);
  const double b = TrainWithThreads(4);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ThreadingDeterminismTest, OnlineImputeFingerprintByteStable) {
  const auto map = SyntheticMap();
  const auto mask = MarMask(map);

  auto fit_and_impute = [&](size_t num_threads) {
    OnlineBiSimImputer imputer(SmallConfig(num_threads));
    Rng rng(17);
    imputer.Fit(map, mask, rng);
    OnlineBiSimImputer::TimedScan scan;
    scan.rssi = {-60.0, kNull, -72.0, kNull};
    scan.time = 30.0;
    OnlineBiSimImputer::TimedScan prev;
    prev.rssi = {-61.0, -67.0, kNull, kNull};
    prev.time = 27.0;
    return imputer.ImputeFingerprint(scan, {prev});
  };

  // Two independent fits with the same seed and thread count must produce
  // byte-identical imputations (training is deterministic end-to-end).
  const std::vector<double> x = fit_and_impute(4);
  const std::vector<double> y = fit_and_impute(4);
  ASSERT_EQ(x.size(), y.size());
  EXPECT_EQ(0, std::memcmp(x.data(), y.data(), x.size() * sizeof(double)));

  // And repeated queries against one fitted model are trivially stable.
  OnlineBiSimImputer imputer(SmallConfig(1));
  Rng rng(17);
  imputer.Fit(map, mask, rng);
  OnlineBiSimImputer::TimedScan scan;
  scan.rssi = {kNull, -70.0, kNull, -88.0};
  scan.time = 12.0;
  const auto q1 = imputer.ImputeFingerprint(scan);
  const auto q2 = imputer.ImputeFingerprint(scan);
  EXPECT_EQ(0, std::memcmp(q1.data(), q2.data(), q1.size() * sizeof(double)));
}

TEST(WorkspaceTest, SteadyStateTrainingAllocatesNoMatrices) {
  const auto map = SyntheticMap();
  const auto mask = MarMask(map);
  BiSimConfig cfg = SmallConfig(1);  // serial: all tape work on this thread
  Rng rng(cfg.seed);
  BiSimModel model(map.num_aps(), cfg, rng);
  const auto seqs = BuildSequences(map, mask, cfg);

  // Warm-up: populate the pool with every shape the tape uses.
  cfg.epochs = 2;
  Rng warm_rng(5);
  TrainBiSim(model, seqs, cfg, warm_rng);

  ad::Workspace& ws = ad::Workspace::Get();
  const auto warm = ws.stats();
  EXPECT_GT(warm.acquires, 0u);

  // Steady state: more epochs must be served entirely from the pool.
  cfg.epochs = 3;
  Rng steady_rng(6);
  TrainBiSim(model, seqs, cfg, steady_rng);
  const auto steady = ws.stats();
  EXPECT_GT(steady.acquires, warm.acquires);
  EXPECT_EQ(steady.fresh_allocs, warm.fresh_allocs)
      << "training epochs after warm-up must not allocate matrix buffers";
}

}  // namespace
}  // namespace rmi::bisim
