// Property-based imputer contract checks: every imputer, on randomized
// sparse radio maps, must (a) produce a complete map, (b) preserve observed
// values, (c) stay inside the legal RSSI range, (d) be deterministic for a
// fixed seed.
#include <gtest/gtest.h>

#include <memory>

#include "common/missing.h"
#include "imputers/autocorrelation.h"
#include "imputers/neural.h"
#include "imputers/traditional.h"

namespace rmi::imputers {
namespace {

/// Random sparse radio map with path/time structure.
rmap::RadioMap RandomMap(Rng& rng, size_t paths, size_t per_path, size_t d) {
  rmap::RadioMap map(d);
  for (size_t p = 0; p < paths; ++p) {
    double t = 0.0;
    for (size_t i = 0; i < per_path; ++i) {
      t += rng.Uniform(0.5, 3.0);
      rmap::Record r;
      r.rssi.assign(d, kNull);
      for (size_t j = 0; j < d; ++j) {
        if (rng.Bernoulli(0.35)) r.rssi[j] = rng.Uniform(-95, -40);
      }
      r.has_rp = rng.Bernoulli(0.3);
      if (r.has_rp) r.rp = {rng.Uniform(0, 40), rng.Uniform(0, 40)};
      r.time = t;
      r.path_id = p;
      map.Add(r);
    }
  }
  // Guarantee at least one observed RP (estimator/interpolation anchors).
  if (!map.empty()) {
    map.record(0).has_rp = true;
    map.record(0).rp = {1.0, 1.0};
  }
  return map;
}

rmap::MaskMatrix AllMarMask(const rmap::RadioMap& map) {
  rmap::MaskMatrix mask(map.size(), map.num_aps());
  for (size_t i = 0; i < map.size(); ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      if (IsNull(map.record(i).rssi[j])) mask.set(i, j, rmap::MaskValue::kMar);
    }
  }
  return mask;
}

std::unique_ptr<Imputer> MakeByIndex(int idx) {
  switch (idx) {
    case 0:
      return std::make_unique<CaseDeletionImputer>();
    case 1:
      return std::make_unique<LinearInterpolationImputer>();
    case 2:
      return std::make_unique<SemiSupervisedImputer>(3, 2);
    case 3:
      return std::make_unique<MiceImputer>();
    case 4: {
      MatrixFactorizationImputer::Params p;
      p.max_epochs = 25;
      return std::make_unique<MatrixFactorizationImputer>(p);
    }
    case 5: {
      NeuralParams p;
      p.epochs = 2;
      p.hidden = 6;
      return std::make_unique<BritsImputer>(p);
    }
    default: {
      SsganImputer::Params p;
      p.epochs = 2;
      p.hidden = 6;
      return std::make_unique<SsganImputer>(p);
    }
  }
}

class ImputerContractTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ImputerContractTest, CompleteInRangeObservedPreserving) {
  auto [imputer_idx, seed] = GetParam();
  Rng gen(static_cast<uint64_t>(5000 + seed));
  rmap::RadioMap map = RandomMap(gen, 3, 8, 5);
  rmap::MaskMatrix mask = AllMarMask(map);
  auto imputer = MakeByIndex(imputer_idx);
  Rng rng(1);
  const rmap::RadioMap out = imputer->Impute(map, mask, rng);

  const bool may_delete = imputer->name() == "CD";
  if (!may_delete) ASSERT_EQ(out.size(), map.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out.record(i).has_rp);
    for (double v : out.record(i).rssi) {
      ASSERT_FALSE(IsNull(v)) << imputer->name();
      EXPECT_GE(v, -100.0) << imputer->name();
      EXPECT_LE(v, 0.0) << imputer->name();
    }
  }
  // Observed values preserved (matched by record id).
  for (size_t i = 0; i < out.size(); ++i) {
    const size_t id = out.record(i).id;
    const rmap::Record& orig = map.record(id);  // id == index in source map
    for (size_t j = 0; j < map.num_aps(); ++j) {
      if (!IsNull(orig.rssi[j])) {
        EXPECT_DOUBLE_EQ(out.record(i).rssi[j], orig.rssi[j])
            << imputer->name();
      }
    }
  }
}

TEST_P(ImputerContractTest, DeterministicForFixedSeed) {
  auto [imputer_idx, seed] = GetParam();
  if (seed != 0) GTEST_SKIP() << "determinism checked once per imputer";
  Rng gen(6000);
  rmap::RadioMap map = RandomMap(gen, 2, 6, 4);
  rmap::MaskMatrix mask = AllMarMask(map);
  auto imputer = MakeByIndex(imputer_idx);
  Rng r1(9), r2(9);
  const rmap::RadioMap a = imputer->Impute(map, mask, r1);
  const rmap::RadioMap b = imputer->Impute(map, mask, r2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      EXPECT_DOUBLE_EQ(a.record(i).rssi[j], b.record(i).rssi[j])
          << imputer->name();
    }
    EXPECT_DOUBLE_EQ(a.record(i).rp.x, b.record(i).rp.x) << imputer->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ImputerContractTest,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(0, 3)));

}  // namespace
}  // namespace rmi::imputers
