#include <gtest/gtest.h>

#include "indoor/ascii_map.h"

namespace rmi::indoor {
namespace {

Venue SmallVenue() {
  VenueSpec s;
  s.width = 30;
  s.height = 30;
  s.rooms_x = 2;
  s.rooms_y = 2;
  s.hallway_width = 3;
  s.num_aps = 10;
  s.rp_spacing = 5;
  s.seed = 4;
  return GenerateVenue(s);
}

TEST(AsciiMapTest, ContainsAllGlyphKinds) {
  const Venue v = SmallVenue();
  const std::string art = RenderVenueAscii(v);
  EXPECT_NE(art.find('#'), std::string::npos);  // walls
  EXPECT_NE(art.find('A'), std::string::npos);  // APs
  EXPECT_NE(art.find('o'), std::string::npos);  // RPs
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(AsciiMapTest, RespectsWidth) {
  const Venue v = SmallVenue();
  AsciiMapOptions opt;
  opt.width_chars = 40;
  const std::string art = RenderVenueAscii(v, opt);
  const size_t first_line = art.find('\n');
  EXPECT_EQ(first_line, 40u);
  // All rows equal width.
  size_t pos = 0;
  while (pos < art.size()) {
    const size_t next = art.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, 40u);
    pos = next + 1;
  }
}

TEST(AsciiMapTest, TogglesLayers) {
  const Venue v = SmallVenue();
  AsciiMapOptions opt;
  opt.show_aps = false;
  opt.show_rps = false;
  const std::string art = RenderVenueAscii(v, opt);
  EXPECT_EQ(art.find('A'), std::string::npos);
  EXPECT_EQ(art.find('o'), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(AsciiMapTest, OverlayPaintsLabels) {
  const Venue v = SmallVenue();
  const std::string art = RenderOverlayAscii(
      v, {{15.0, 15.0}, {5.0, 5.0}}, {'X', 'Y'});
  EXPECT_NE(art.find('X'), std::string::npos);
  EXPECT_NE(art.find('Y'), std::string::npos);
}

TEST(AsciiMapTest, OutOfBoundsOverlayIgnored) {
  const Venue v = SmallVenue();
  const std::string art = RenderOverlayAscii(v, {{-5.0, 500.0}}, {'Z'});
  EXPECT_EQ(art.find('Z'), std::string::npos);
}

TEST(AsciiMapTest, TopRowIsMaxY) {
  const Venue v = SmallVenue();
  // Paint a marker near the top edge (max y); it must appear on row 0.
  const std::string art =
      RenderOverlayAscii(v, {{15.0, 29.9}}, {'T'},
                         AsciiMapOptions{.width_chars = 40,
                                         .show_aps = false,
                                         .show_rps = false,
                                         .show_walls = false});
  const size_t marker = art.find('T');
  ASSERT_NE(marker, std::string::npos);
  EXPECT_LT(marker, art.find('\n'));
}

}  // namespace
}  // namespace rmi::indoor
