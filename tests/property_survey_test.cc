// Property-based checks of the Section II-B radio-map creation: invariants
// that must hold for *any* walking-survey record table.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/missing.h"
#include "survey/survey.h"

namespace rmi::survey {
namespace {

constexpr size_t kNumAps = 6;

/// Random record table: RP and RSSI records at increasing times.
PathRecordTable RandomTable(Rng& rng, size_t n) {
  PathRecordTable table;
  double t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    t += rng.Uniform(0.1, 3.0);
    SurveyRecord r;
    r.time = t;
    r.true_position = {t, 0.0};
    if (rng.Bernoulli(0.3)) {
      r.is_rp = true;
      r.rp = {rng.Uniform(0, 50), rng.Uniform(0, 50)};
    } else {
      r.is_rp = false;
      for (size_t ap = 0; ap < kNumAps; ++ap) {
        if (rng.Bernoulli(0.4)) {
          r.rssi.emplace_back(ap, rng.Uniform(-95, -40));
        }
      }
    }
    table.records.push_back(std::move(r));
  }
  return table;
}

/// Sum of per-AP measurement values in the raw table (merging averages
/// common APs, so we check a weaker but exact invariant below instead).
size_t CountRawMeasurements(const PathRecordTable& table) {
  size_t n = 0;
  for (const auto& r : table.records) n += r.rssi.size();
  return n;
}

class SurveyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SurveyPropertyTest, EveryObservedApSurvivesMerging) {
  Rng rng(3000 + GetParam());
  const auto table = RandomTable(rng, 30);
  std::vector<geom::Point> positions;
  const auto records = CreateRadioMapRecords(table, kNumAps, 1.0, &positions);

  // Each AP observed in the raw table must be observed in the output (in
  // some record), and vice versa.
  std::vector<bool> raw_seen(kNumAps, false), out_seen(kNumAps, false);
  for (const auto& r : table.records) {
    for (const auto& [ap, v] : r.rssi) raw_seen[ap] = true;
  }
  for (const auto& r : records) {
    for (size_t ap = 0; ap < kNumAps; ++ap) {
      if (!IsNull(r.rssi[ap])) out_seen[ap] = true;
    }
  }
  EXPECT_EQ(raw_seen, out_seen);
}

TEST_P(SurveyPropertyTest, ValuesStayWithinRawRange) {
  // Merged values are averages of raw values, so per AP the output range
  // is inside the raw [min, max].
  Rng rng(3100 + GetParam());
  const auto table = RandomTable(rng, 40);
  std::vector<geom::Point> positions;
  const auto records = CreateRadioMapRecords(table, kNumAps, 1.5, &positions);
  for (size_t ap = 0; ap < kNumAps; ++ap) {
    double lo = 1e300, hi = -1e300;
    for (const auto& r : table.records) {
      for (const auto& [a, v] : r.rssi) {
        if (a == ap) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
    }
    for (const auto& r : records) {
      if (!IsNull(r.rssi[ap])) {
        EXPECT_GE(r.rssi[ap], lo - 1e-9);
        EXPECT_LE(r.rssi[ap], hi + 1e-9);
      }
    }
  }
}

TEST_P(SurveyPropertyTest, OutputTimesAreNonDecreasing) {
  Rng rng(3200 + GetParam());
  const auto table = RandomTable(rng, 25);
  std::vector<geom::Point> positions;
  const auto records = CreateRadioMapRecords(table, kNumAps, 1.0, &positions);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }
}

TEST_P(SurveyPropertyTest, EveryRpSurvivesOrMerges) {
  // Number of output records with an RP equals the number of raw RP
  // records that were not merged into... actually every raw RP record
  // produces exactly one output record with an RP (merging attaches it to
  // an RSSI record; it never disappears and never duplicates), except when
  // two RP records are adjacent — they cannot merge with each other, so
  // the count is exact.
  Rng rng(3300 + GetParam());
  const auto table = RandomTable(rng, 35);
  size_t raw_rps = 0;
  for (const auto& r : table.records) raw_rps += r.is_rp;
  std::vector<geom::Point> positions;
  const auto records = CreateRadioMapRecords(table, kNumAps, 1.0, &positions);
  size_t out_rps = 0;
  for (const auto& r : records) out_rps += r.has_rp;
  EXPECT_EQ(out_rps, raw_rps);
}

TEST_P(SurveyPropertyTest, RecordCountShrinksMonotonicallyWithEpsilon) {
  Rng rng(3400 + GetParam());
  const auto table = RandomTable(rng, 40);
  std::vector<geom::Point> positions;
  size_t prev = table.records.size() + 1;
  for (double eps : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    const auto records = CreateRadioMapRecords(table, kNumAps, eps, &positions);
    EXPECT_LE(records.size(), prev);
    prev = records.size();
  }
}

TEST_P(SurveyPropertyTest, GroundTruthPositionsAligned) {
  Rng rng(3500 + GetParam());
  const auto table = RandomTable(rng, 30);
  std::vector<geom::Point> positions;
  const auto records = CreateRadioMapRecords(table, kNumAps, 1.0, &positions);
  ASSERT_EQ(records.size(), positions.size());
  // The ground-truth position of each output record is the true position
  // of some raw record with the same time.
  std::map<double, geom::Point> by_time;
  for (const auto& r : table.records) by_time[r.time] = r.true_position;
  for (size_t i = 0; i < records.size(); ++i) {
    auto it = by_time.find(records[i].time);
    ASSERT_NE(it, by_time.end());
    EXPECT_DOUBLE_EQ(positions[i].x, it->second.x);
  }
}

TEST_P(SurveyPropertyTest, MergedRecordsPreserveMeasurementMass) {
  // With epsilon = 0 nothing merges: the output observation count equals
  // the raw per-(record, AP) distinct count.
  Rng rng(3600 + GetParam());
  const auto table = RandomTable(rng, 30);
  std::vector<geom::Point> positions;
  const auto records = CreateRadioMapRecords(table, kNumAps, 0.0, &positions);
  size_t out_obs = 0;
  for (const auto& r : records) out_obs += r.NumObserved();
  EXPECT_EQ(out_obs, CountRawMeasurements(table));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SurveyPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace rmi::survey
