#include <gtest/gtest.h>

#include "indoor/venue.h"

namespace rmi::indoor {
namespace {

VenueSpec SmallSpec() {
  VenueSpec s;
  s.name = "small";
  s.width = 30;
  s.height = 30;
  s.rooms_x = 2;
  s.rooms_y = 2;
  s.hallway_width = 3;
  s.num_aps = 20;
  s.rp_spacing = 4;
  s.room_visit_fraction = 0.5;
  s.seed = 1;
  return s;
}

TEST(VenueTest, BasicStructure) {
  Venue v = GenerateVenue(SmallSpec());
  EXPECT_EQ(v.rooms.size(), 4u);
  EXPECT_EQ(v.aps.size(), 20u);
  EXPECT_FALSE(v.rps.empty());
  EXPECT_FALSE(v.paths.empty());
  EXPECT_FALSE(v.walls.empty());
  EXPECT_DOUBLE_EQ(v.FloorArea(), 900.0);
}

TEST(VenueTest, ApsInsideBounds) {
  Venue v = GenerateVenue(SmallSpec());
  for (const AccessPoint& ap : v.aps) {
    EXPECT_GE(ap.position.x, 0.0);
    EXPECT_LE(ap.position.x, v.width);
    EXPECT_GE(ap.position.y, 0.0);
    EXPECT_LE(ap.position.y, v.height);
  }
}

TEST(VenueTest, RpsInsideBounds) {
  Venue v = GenerateVenue(SmallSpec());
  for (const auto& rp : v.rps) {
    EXPECT_GE(rp.x, 0.0);
    EXPECT_LE(rp.x, v.width);
    EXPECT_GE(rp.y, 0.0);
    EXPECT_LE(rp.y, v.height);
  }
}

TEST(VenueTest, PathsReferenceValidRps) {
  Venue v = GenerateVenue(SmallSpec());
  for (const auto& path : v.paths) {
    EXPECT_GE(path.size(), 2u);
    for (size_t idx : path) EXPECT_LT(idx, v.rps.size());
  }
}

TEST(VenueTest, DeterministicForSameSpec) {
  Venue a = GenerateVenue(SmallSpec());
  Venue b = GenerateVenue(SmallSpec());
  ASSERT_EQ(a.aps.size(), b.aps.size());
  for (size_t i = 0; i < a.aps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.aps[i].position.x, b.aps[i].position.x);
  }
  ASSERT_EQ(a.rps.size(), b.rps.size());
  ASSERT_EQ(a.paths.size(), b.paths.size());
}

TEST(VenueTest, HallwayRpsAreOutsideRooms) {
  // RPs on hallway centerlines must not fall inside any room rectangle.
  Venue v = GenerateVenue(SmallSpec());
  // The first RPs belong to hallway paths by construction; room RPs are at
  // room centers, so test: every RP is either in a room center or outside
  // all rooms.
  size_t in_room = 0;
  for (const auto& rp : v.rps) {
    for (const auto& room : v.rooms) {
      if (room.Contains(rp)) {
        ++in_room;
        break;
      }
    }
  }
  // Only the visited-room RPs (2 of 4 rooms at fraction 0.5) are in rooms.
  EXPECT_EQ(in_room, 2u);
}

TEST(VenueTest, WallsHaveDoorGaps) {
  // Each room emits 4 walls, the hallway-facing one split in two around the
  // door: 5 wall rectangles per room.
  Venue v = GenerateVenue(SmallSpec());
  EXPECT_EQ(v.walls.size(), v.rooms.size() * 5);
}

TEST(VenueTest, RoomDetourPathsVisitRooms) {
  Venue v = GenerateVenue(SmallSpec());
  // Some path must contain an RP inside a room (detour).
  bool found = false;
  for (const auto& path : v.paths) {
    for (size_t idx : path) {
      for (const auto& room : v.rooms) {
        if (room.Contains(v.rps[idx])) found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

class PresetTest
    : public ::testing::TestWithParam<std::tuple<const char*, double, double,
                                                 size_t, bool>> {};

TEST_P(PresetTest, MatchesTableVStatistics) {
  auto [name, area, rp_density, aps_full, bluetooth] = GetParam();
  VenueSpec spec;
  if (std::string(name) == "Kaide") spec = KaideSpec(1.0);
  if (std::string(name) == "Wanda") spec = WandaSpec(1.0);
  if (std::string(name) == "Longhu") spec = LonghuSpec(1.0);
  Venue v = GenerateVenue(spec);
  EXPECT_EQ(v.name, name);
  EXPECT_NEAR(v.FloorArea(), area, area * 0.1);
  EXPECT_NEAR(v.RpDensityPer100m2(), rp_density, rp_density * 0.35);
  EXPECT_EQ(v.NumAps(), aps_full);
  EXPECT_EQ(v.bluetooth, bluetooth);
}

INSTANTIATE_TEST_SUITE_P(
    TableV, PresetTest,
    ::testing::Values(
        std::make_tuple("Kaide", 3225.7, 3.53, size_t{671}, false),
        std::make_tuple("Wanda", 4458.5, 2.65, size_t{929}, false),
        std::make_tuple("Longhu", 6504.1, 3.11, size_t{330}, true)));

TEST(PresetTest, ScaleShrinksAps) {
  EXPECT_EQ(KaideSpec(0.25).num_aps, size_t{671 / 4});
  EXPECT_EQ(GenerateVenue(KaideSpec(0.25)).aps.size(), size_t{671 / 4});
  // Scale never goes below the floor.
  EXPECT_GE(KaideSpec(0.001).num_aps, 24u);
}

}  // namespace
}  // namespace rmi::indoor
