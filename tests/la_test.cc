#include <gtest/gtest.h>

#include <cmath>

#include "la/matrix.h"

namespace rmi::la {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6);
}

TEST(MatrixTest, IdentityAndOnes) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::Ones(2, 2).Sum(), 4.0);
}

TEST(MatrixTest, ArithmeticOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 6);
  EXPECT_DOUBLE_EQ((b - a)(1, 1), 4);
  EXPECT_DOUBLE_EQ(a.CwiseProduct(b)(1, 0), 21);
  EXPECT_DOUBLE_EQ(b.CwiseQuotient(a)(0, 1), 3);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 1), 8);
  EXPECT_DOUBLE_EQ((2.0 * a)(1, 1), 8);
  EXPECT_DOUBLE_EQ((a + 1.0)(0, 0), 2);
  EXPECT_DOUBLE_EQ((-a)(0, 0), -1);
}

TEST(MatrixTest, CompoundAssignment) {
  Matrix a{{1, 2}};
  a += Matrix{{1, 1}};
  a -= Matrix{{0, 1}};
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 6);
  EXPECT_DOUBLE_EQ(a(0, 1), 6);
}

TEST(MatrixTest, MatMulCorrectness) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8}, {9, 10}, {11, 12}};
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, MatMulIdentityIsNoop) {
  Rng rng(1);
  Matrix a = Matrix::Random(4, 4, rng);
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.MatMul(Matrix::Identity(4)), a), 0.0, 1e-15);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(2);
  Matrix a = Matrix::Random(3, 5, rng);
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.Transpose().Transpose(), a), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(a.Transpose()(4, 2), a(2, 4));
}

TEST(MatrixTest, MatMulTransposeProperty) {
  // (AB)^T == B^T A^T
  Rng rng(3);
  Matrix a = Matrix::Random(3, 4, rng);
  Matrix b = Matrix::Random(4, 2, rng);
  Matrix lhs = a.MatMul(b).Transpose();
  Matrix rhs = b.Transpose().MatMul(a.Transpose());
  EXPECT_NEAR(Matrix::MaxAbsDiff(lhs, rhs), 0.0, 1e-12);
}

TEST(MatrixTest, MapApplies) {
  Matrix a{{1, 4}, {9, 16}};
  Matrix r = a.Map([](double v) { return std::sqrt(v); });
  EXPECT_DOUBLE_EQ(r(1, 0), 3);
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix x{{1, 2}, {3, 4}};
  Matrix b{{10, 20}};
  Matrix y = x.AddRowBroadcast(b);
  EXPECT_DOUBLE_EQ(y(0, 1), 22);
  EXPECT_DOUBLE_EQ(y(1, 0), 13);
}

TEST(MatrixTest, RowColSetRow) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_DOUBLE_EQ(a.Row(1)(0, 2), 6);
  EXPECT_DOUBLE_EQ(a.Col(2)(0, 0), 3);
  a.SetRow(0, Matrix{{7, 8, 9}});
  EXPECT_DOUBLE_EQ(a(0, 1), 8);
}

TEST(MatrixTest, ConcatAndSlice) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5}, {6}};
  Matrix cc = a.ConcatCols(b);
  EXPECT_EQ(cc.cols(), 3u);
  EXPECT_DOUBLE_EQ(cc(1, 2), 6);
  Matrix cr = a.ConcatRows(Matrix{{7, 8}});
  EXPECT_EQ(cr.rows(), 3u);
  EXPECT_DOUBLE_EQ(cr(2, 0), 7);
  EXPECT_DOUBLE_EQ(cc.SliceCols(1, 3)(0, 1), 5);
  EXPECT_DOUBLE_EQ(cr.SliceRows(1, 2)(0, 1), 4);
}

TEST(MatrixTest, Reductions) {
  Matrix a{{-3, 4}};
  EXPECT_DOUBLE_EQ(a.Sum(), 1);
  EXPECT_DOUBLE_EQ(a.Mean(), 0.5);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5);
}

TEST(MatrixTest, SquaredDistance) {
  Matrix a{{0, 0}};
  Matrix b{{3, 4}};
  EXPECT_DOUBLE_EQ(Matrix::SquaredDistance(a, b), 25);
}

TEST(MatrixTest, AllFinite) {
  Matrix a{{1, 2}};
  EXPECT_TRUE(a.AllFinite());
  a(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(a.AllFinite());
}

TEST(MatrixTest, RowColVectors) {
  Matrix r = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  Matrix c = Matrix::ColVector({1, 2});
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
}

TEST(CholeskyTest, SolvesSpdSystem) {
  Matrix a{{4, 2}, {2, 3}};
  Matrix b{{1}, {2}};
  Matrix x = CholeskySolve(a, b);
  Matrix r = a.MatMul(x);
  EXPECT_NEAR(Matrix::MaxAbsDiff(r, b), 0.0, 1e-12);
}

TEST(CholeskyTest, RidgeRegularizes) {
  // Singular A becomes solvable with ridge.
  Matrix a{{1, 1}, {1, 1}};
  Matrix b{{2}, {2}};
  Matrix x = CholeskySolve(a, b, 0.5);
  EXPECT_TRUE(x.AllFinite());
}

TEST(CholeskyTest, MultiRhs) {
  Rng rng(5);
  Matrix m = Matrix::Random(4, 4, rng);
  Matrix a = m.Transpose().MatMul(m) + Matrix::Identity(4) * 0.1;
  Matrix b = Matrix::Random(4, 3, rng);
  Matrix x = CholeskySolve(a, b);
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.MatMul(x), b), 0.0, 1e-10);
}

TEST(RidgeRegressionTest, RecoversLinearModel) {
  Rng rng(6);
  Matrix a = Matrix::Random(50, 3, rng);
  Matrix w_true{{2.0}, {-1.0}, {0.5}};
  Matrix b = a.MatMul(w_true);
  Matrix w = RidgeRegression(a, b, 1e-8);
  EXPECT_NEAR(Matrix::MaxAbsDiff(w, w_true), 0.0, 1e-6);
}

TEST(RidgeRegressionTest, ShrinksWithLargeLambda) {
  Rng rng(7);
  Matrix a = Matrix::Random(30, 2, rng);
  Matrix b = Matrix::Random(30, 1, rng);
  Matrix w_small = RidgeRegression(a, b, 1e-6);
  Matrix w_large = RidgeRegression(a, b, 1e6);
  EXPECT_LT(w_large.FrobeniusNorm(), w_small.FrobeniusNorm());
  EXPECT_LT(w_large.FrobeniusNorm(), 1e-3);
}

// Property sweep: MatMul associativity across shapes.
class MatMulShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, Associativity) {
  auto [n, k, m] = GetParam();
  Rng rng(100 + n * 7 + k * 3 + m);
  Matrix a = Matrix::Random(n, k, rng);
  Matrix b = Matrix::Random(k, m, rng);
  Matrix c = Matrix::Random(m, 2, rng);
  Matrix lhs = a.MatMul(b).MatMul(c);
  Matrix rhs = a.MatMul(b.MatMul(c));
  EXPECT_NEAR(Matrix::MaxAbsDiff(lhs, rhs), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 5), std::make_tuple(1, 8, 2),
                      std::make_tuple(7, 7, 7), std::make_tuple(3, 10, 1)));

// Property sweep: Cholesky solves random SPD systems of several sizes.
class CholeskySizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySizeTest, SolvesRandomSpd) {
  const int n = GetParam();
  Rng rng(200 + n);
  Matrix m = Matrix::Random(n, n, rng);
  Matrix a = m.Transpose().MatMul(m) + Matrix::Identity(n) * 0.5;
  Matrix b = Matrix::Random(n, 1, rng);
  Matrix x = CholeskySolve(a, b);
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.MatMul(x), b), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace rmi::la
