// Exactness of the warm rebuild chain (PR: many-core serving path).
// Every warm stage claims either bit-identity with its cold counterpart
// (SpatialIndex::BuildIncremental, delta differentiation for row-local
// differentiators, the warm BuildSnapshot as a whole with a KNN
// estimator) or a deterministic, bounded approximation (the rotating
// random-forest warm start). These tests pin those claims down, including
// every documented cold-fallback trigger.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clustering/differentiation.h"
#include "common/missing.h"
#include "common/rng.h"
#include "positioning/estimators.h"
#include "radiomap/radio_map.h"
#include "serving/snapshot.h"
#include "serving/spatial_index.h"
#include "serving/synthetic.h"

namespace rmi::serving {
namespace {

std::vector<double> RowOf(const la::Matrix& m, size_t i) {
  std::vector<double> row(m.cols());
  for (size_t j = 0; j < m.cols(); ++j) row[j] = m(i, j);
  return row;
}

struct RefSet {
  la::Matrix refs;
  std::vector<geom::Point> positions;
};

RefSet ExtractRefs(const rmap::RadioMap& map) {
  RefSet out{la::Matrix(map.size(), map.num_aps()), {}};
  for (size_t i = 0; i < map.size(); ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      out.refs(i, j) = map.record(i).rssi[j];
    }
    out.positions.push_back(map.record(i).rp);
  }
  return out;
}

/// Incremental and cold indexes must agree cell-for-cell on observable
/// state and answer every query identically (exact distances included).
void ExpectIndexesIdentical(const SpatialIndex& warm, const SpatialIndex& cold,
                            const la::Matrix& refs, const la::Matrix& queries) {
  ASSERT_EQ(warm.num_refs(), cold.num_refs());
  ASSERT_EQ(warm.num_cells(), cold.num_cells());
  for (size_t i = 0; i < queries.rows(); ++i) {
    const std::vector<double> q = RowOf(queries, i);
    for (size_t k : {1u, 4u, 9u}) {
      const auto got = warm.Search(refs, q, k);
      const auto want = cold.Search(refs, q, k);
      ASSERT_EQ(got.size(), want.size()) << "query " << i << " k=" << k;
      for (size_t t = 0; t < want.size(); ++t) {
        EXPECT_EQ(got[t].first, want[t].first) << "query " << i << " k=" << k;
        EXPECT_EQ(got[t].second, want[t].second) << "query " << i << " k=" << k;
      }
    }
  }
}

TEST(SpatialIndexIncrementalTest, ValueChangedRowsMatchColdBuildExactly) {
  const rmap::RadioMap map = MakeSyntheticServingMap(14, 10, 9, 5);
  RefSet base = ExtractRefs(map);
  SpatialIndex previous;
  previous.Build(base.refs, base.positions, 4.0);

  // Re-imputation moved a few fingerprints; RPs never move.
  const std::vector<size_t> changed = {3, 17, 40, base.refs.rows() - 1};
  for (size_t r : changed) {
    for (size_t j = 0; j < base.refs.cols(); ++j) base.refs(r, j) += 1.5;
  }
  SpatialIndex warm, cold;
  warm.BuildIncremental(base.refs, base.positions, 4.0, previous, changed);
  cold.Build(base.refs, base.positions, 4.0);
  const la::Matrix queries = MakeSyntheticQueries(map, 24, 0.2, 77);
  ExpectIndexesIdentical(warm, cold, base.refs, queries);
}

TEST(SpatialIndexIncrementalTest, AppendedRowsMatchColdBuildExactly) {
  const rmap::RadioMap map = MakeSyntheticServingMap(12, 9, 8, 6);
  const RefSet base = ExtractRefs(map);
  SpatialIndex previous;
  previous.Build(base.refs, base.positions, 4.0);

  // Two new RPs inside the old bounding box (the reuse-eligible case) plus
  // one changed surviving row.
  const size_t n0 = base.refs.rows();
  RefSet grown{la::Matrix(n0 + 2, base.refs.cols()), base.positions};
  for (size_t i = 0; i < n0; ++i) {
    for (size_t j = 0; j < base.refs.cols(); ++j) {
      grown.refs(i, j) = base.refs(i, j);
    }
  }
  for (size_t a = 0; a < 2; ++a) {
    const size_t src = 5 + 11 * a;
    for (size_t j = 0; j < base.refs.cols(); ++j) {
      grown.refs(n0 + a, j) = base.refs(src, j) - 2.0;
    }
    grown.positions.push_back(base.positions[src]);
  }
  for (size_t j = 0; j < grown.refs.cols(); ++j) grown.refs(8, j) -= 1.0;

  const std::vector<size_t> changed = {8, n0, n0 + 1};
  SpatialIndex warm, cold;
  warm.BuildIncremental(grown.refs, grown.positions, 4.0, previous, changed);
  cold.Build(grown.refs, grown.positions, 4.0);
  const la::Matrix queries = MakeSyntheticQueries(map, 24, 0.0, 79);
  ExpectIndexesIdentical(warm, cold, grown.refs, queries);
}

TEST(SpatialIndexIncrementalTest, FallbacksStillMatchColdBuild) {
  const rmap::RadioMap map = MakeSyntheticServingMap(10, 8, 7, 7);
  const RefSet base = ExtractRefs(map);
  SpatialIndex previous;
  previous.Build(base.refs, base.positions, 4.0);

  const size_t n0 = base.refs.rows();
  RefSet grown{la::Matrix(n0 + 1, base.refs.cols()), base.positions};
  for (size_t i = 0; i < n0; ++i) {
    for (size_t j = 0; j < base.refs.cols(); ++j) {
      grown.refs(i, j) = base.refs(i, j);
    }
  }
  for (size_t j = 0; j < base.refs.cols(); ++j) {
    grown.refs(n0, j) = base.refs(0, j);
  }
  // (a) New RP *outside* the old bounding box: grid geometry moves, the
  // incremental path must detect it and cold-build.
  grown.positions.push_back({-50.0, -50.0});
  SpatialIndex warm_a, cold_a;
  warm_a.BuildIncremental(grown.refs, grown.positions, 4.0, previous, {n0});
  cold_a.Build(grown.refs, grown.positions, 4.0);
  const la::Matrix queries = MakeSyntheticQueries(map, 16, 0.1, 81);
  ExpectIndexesIdentical(warm_a, cold_a, grown.refs, queries);

  // (b) Appended row missing from changed_rows: reuse would silently drop
  // it from every cell, so the guard must force a cold build instead.
  grown.positions.back() = base.positions[0];
  SpatialIndex warm_b, cold_b;
  warm_b.BuildIncremental(grown.refs, grown.positions, 4.0, previous, {});
  cold_b.Build(grown.refs, grown.positions, 4.0);
  ExpectIndexesIdentical(warm_b, cold_b, grown.refs, queries);

  // (c) Empty previous index: nothing to reuse.
  SpatialIndex empty_previous, warm_c, cold_c;
  warm_c.BuildIncremental(base.refs, base.positions, 4.0, empty_previous, {});
  cold_c.Build(base.refs, base.positions, 4.0);
  ExpectIndexesIdentical(warm_c, cold_c, base.refs, queries);
}

/// Survey map with nulls: two areas, append-only growth between rebuilds.
rmap::RadioMap SurveyMap(size_t num_records) {
  rmap::RadioMap map(4);
  const double nul = kNull;
  for (size_t i = 0; i < num_records; ++i) {
    rmap::Record r;
    const bool left = (i % 2) == 0;
    const double base = -50.0 - double(i % 7);
    r.rssi = left ? std::vector<double>{base, base - 10.0, nul, nul}
                  : std::vector<double>{nul, nul, base - 20.0, base - 30.0};
    if (i % 5 == 3) r.rssi[left ? 1 : 2] = nul;  // a MAR-style hole
    r.rp = {left ? double(i) * 0.5 : 10.0 + double(i) * 0.5, 1.0};
    r.has_rp = true;
    r.time = double(i);
    map.Add(r);
  }
  return map;
}

void ExpectMasksEqual(const rmap::MaskMatrix& got,
                      const rmap::MaskMatrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < want.rows(); ++i) {
    for (size_t j = 0; j < want.cols(); ++j) {
      ASSERT_EQ(got.at(i, j), want.at(i, j)) << "cell (" << i << "," << j << ")";
    }
  }
}

TEST(DifferentiateDeltaTest, RowLocalDeltaEqualsFullDifferentiation) {
  const cluster::MarOnlyDifferentiator differentiator;
  const rmap::RadioMap full = SurveyMap(30);
  const rmap::RadioMap base = SurveyMap(22);  // byte-identical prefix

  Rng rng_a(3), rng_b(3), rng_c(3);
  const rmap::MaskMatrix previous = differentiator.Differentiate(base, rng_a);
  const rmap::MaskMatrix delta =
      differentiator.DifferentiateDelta(full, previous, base.size(), rng_b);
  const rmap::MaskMatrix want = differentiator.Differentiate(full, rng_c);
  ExpectMasksEqual(delta, want);
}

TEST(DifferentiateDeltaTest, FallsBackToFullDifferentiation) {
  const cluster::MarOnlyDifferentiator differentiator;
  const rmap::RadioMap full = SurveyMap(16);
  Rng rng_a(9), rng_b(9), rng_c(9), rng_d(9);
  const rmap::MaskMatrix want = differentiator.Differentiate(full, rng_a);

  // No previous rows: nothing to splice.
  const rmap::MaskMatrix empty_previous(0, full.num_aps());
  ExpectMasksEqual(
      differentiator.DifferentiateDelta(full, empty_previous, 0, rng_b), want);

  // Shrunk map: a previous rebuild that labeled more rows than the map now
  // has (num_previous > N) cannot be spliced.
  Rng mk(1);
  const rmap::MaskMatrix drifted =
      cluster::MarOnlyDifferentiator().Differentiate(SurveyMap(12), mk);
  ExpectMasksEqual(
      differentiator.DifferentiateDelta(full, drifted, full.size() + 5, rng_c),
      want);

  // num_previous larger than the previous mask: inconsistent inputs.
  const rmap::MaskMatrix previous(8, full.num_aps());
  ExpectMasksEqual(
      differentiator.DifferentiateDelta(full, previous, 12, rng_d), want);
}

std::vector<geom::Point> EstimateAll(const positioning::LocationEstimator& est,
                                     const la::Matrix& queries) {
  std::vector<geom::Point> out;
  for (size_t i = 0; i < queries.rows(); ++i) {
    out.push_back(est.Estimate(RowOf(queries, i)));
  }
  return out;
}

TEST(RandomForestWarmTest, NullPreviousFallsBackToColdFitExactly) {
  const rmap::RadioMap map = MakeSyntheticServingMap(10, 8, 8, 9);
  const la::Matrix queries = MakeSyntheticQueries(map, 12, 0.0, 17);
  positioning::RandomForestEstimator::Params params;
  params.num_trees = 8;
  params.max_depth = 6;

  positioning::RandomForestEstimator cold(params), warm(params);
  Rng rng_cold(4), rng_warm(4);
  cold.Fit(map, rng_cold);
  warm.FitWarm(map, rng_warm, nullptr, {});
  const auto a = EstimateAll(cold, queries), b = EstimateAll(warm, queries);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

TEST(RandomForestWarmTest, WarmRebuildsAreDeterministic) {
  const rmap::RadioMap map = MakeSyntheticServingMap(10, 8, 8, 9);
  const la::Matrix queries = MakeSyntheticQueries(map, 12, 0.0, 19);
  positioning::RandomForestEstimator::Params params;
  params.num_trees = 8;
  params.max_depth = 6;
  const std::vector<size_t> changed = {1, 2, 3};

  // Two identical cold-fit + warm-rebuild sequences must agree bit-for-bit
  // (the rotating tree block is a pure function of the warm generation).
  auto run = [&] {
    positioning::RandomForestEstimator previous(params), next(params);
    Rng rng_fit(6), rng_warm(7);
    previous.Fit(map, rng_fit);
    next.FitWarm(map, rng_warm, &previous, changed);
    return EstimateAll(next, queries);
  };
  const auto a = run(), b = run();
  ASSERT_EQ(a.size(), b.size());
  bool any_nonzero = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
    any_nonzero = any_nonzero || a[i].x != 0.0 || a[i].y != 0.0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(WarmSnapshotTest, WarmBuildIsBitIdenticalToColdForKnn) {
  const rmap::RadioMap base = MakeSyntheticServingMap(12, 9, 10, 13);
  Rng rng0(5);
  const std::shared_ptr<const MapSnapshot> previous = BuildSnapshot(
      base, std::make_unique<positioning::KnnEstimator>(3, true), rng0,
      SnapshotOptions{1, 6.0});

  // The next imputed map: two surviving rows re-imputed, one RP appended
  // at a surveyed location (inside the old bounding box).
  rmap::RadioMap next = base;
  for (size_t j = 0; j < next.num_aps(); ++j) {
    next.record(4).rssi[j] -= 2.0;
    next.record(30).rssi[j] += 1.0;
  }
  rmap::Record extra = base.record(7);
  for (double& v : extra.rssi) v -= 3.0;
  next.Add(extra);
  const std::vector<size_t> changed = {4, 30, base.size()};

  SnapshotOptions cold_opt{2, 6.0};
  SnapshotOptions warm_opt = cold_opt;
  warm_opt.warm_previous = previous.get();
  warm_opt.changed_rows = &changed;

  Rng rng_cold(8), rng_warm(8);
  const auto cold = BuildSnapshot(
      next, std::make_unique<positioning::KnnEstimator>(3, true), rng_cold,
      cold_opt);
  const auto warm = BuildSnapshot(
      next, std::make_unique<positioning::KnnEstimator>(3, true), rng_warm,
      warm_opt);

  // The checksum covers fingerprints, positions, index, and version — equal
  // stamps mean the warm path reproduced the cold snapshot bit-for-bit.
  ASSERT_TRUE(cold->Consistent());
  ASSERT_TRUE(warm->Consistent());
  EXPECT_EQ(warm->checksum, cold->checksum);
  EXPECT_EQ(warm->index.num_cells(), cold->index.num_cells());

  const la::Matrix queries = MakeSyntheticQueries(next, 20, 0.1, 23);
  const auto a = cold->estimator->EstimateBatch(queries);
  const auto b = warm->estimator->EstimateBatch(queries);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

}  // namespace
}  // namespace rmi::serving
