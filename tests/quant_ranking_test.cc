// The quantized ranking path (src/la/quant.h + KnnEstimator's kQuant
// kernel):
//  * QuantizeRefs recovers per-AP scale/zero-point and round-trips every
//    cell within half a quantization step;
//  * QuantizeQueryRow handles kNull entries (value 0, mask 0, excluded
//    from norm and error bound) and clamps out-of-range values with the
//    residual charged to the error bound;
//  * GemmQuantNN / MaskedQuantRowNorms match their naive integer
//    reference loops exactly (integer arithmetic has no rounding);
//  * the headline property: EstimateBatch on the kQuant kernel is
//    bit-identical to per-record Estimate across 1k random queries,
//    complete and 30%-null, and all three RankingKernels agree.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/missing.h"
#include "common/rng.h"
#include "common/topc.h"
#include "la/quant.h"
#include "positioning/estimators.h"
#include "serving/synthetic.h"

namespace rmi::la {
namespace {

TEST(QuantizeRefsTest, RecoversPerApScaleAndZeroPoint) {
  // Column 0 spans [-95, -5] (range 90 -> scale 90/254, above the floor),
  // column 1 spans [-50, -40] (range 10 -> floored scale), column 2 is
  // constant (degenerate: also floored).
  Matrix refs(3, 3);
  refs(0, 0) = -95.0; refs(1, 0) = -50.0; refs(2, 0) = -5.0;
  refs(0, 1) = -50.0; refs(1, 1) = -45.0; refs(2, 1) = -40.0;
  refs(0, 2) = -70.0; refs(1, 2) = -70.0; refs(2, 2) = -70.0;
  const QuantizedRefs q = QuantizeRefs(refs);
  ASSERT_EQ(q.rows, 3u);
  ASSERT_EQ(q.cols, 3u);
  EXPECT_EQ(q.padded % kQuantLanePad, 0u);
  EXPECT_GE(q.padded, q.rows);

  EXPECT_NEAR(q.scale[0], 90.0 / 254.0, 1e-12);
  EXPECT_NEAR(q.zero_point[0], -50.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.scale[1], kQuantMinScale);  // floored
  EXPECT_NEAR(q.zero_point[1], -45.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.scale[2], kQuantMinScale);  // degenerate column
  EXPECT_DOUBLE_EQ(q.min_scale, kQuantMinScale);
  EXPECT_NEAR(q.max_scale, 90.0 / 254.0, 1e-12);

  // Round trip: dequantized cell within scale/2 of the original, squares
  // and norms consistent with the stored int8 values.
  for (size_t j = 0; j < q.cols; ++j) {
    for (size_t r = 0; r < q.rows; ++r) {
      const int8_t v = q.values[j * q.padded + r];
      EXPECT_LE(std::abs(static_cast<int>(v)), 127);
      const double back = q.zero_point[j] + q.scale[j] * v;
      EXPECT_LE(std::fabs(back - refs(r, j)), q.scale[j] * 0.5 + 1e-12)
          << "col " << j << " row " << r;
      EXPECT_EQ(q.squares[j * q.padded + r],
                static_cast<int16_t>(static_cast<int>(v) * v));
    }
    // Padding rows stay zero so they contribute nothing to any kernel.
    for (size_t r = q.rows; r < q.padded; ++r) {
      EXPECT_EQ(q.values[j * q.padded + r], 0);
      EXPECT_EQ(q.squares[j * q.padded + r], 0);
    }
  }
  for (size_t r = 0; r < q.rows; ++r) {
    int32_t norm = 0;
    for (size_t j = 0; j < q.cols; ++j) {
      const int32_t v = q.values[j * q.padded + r];
      norm += v * v;
    }
    EXPECT_EQ(q.norms[r], norm);
  }
}

TEST(QuantizeQueryRowTest, NullEntriesYieldZeroValueAndMask) {
  Rng rng(5);
  const Matrix refs = Matrix::Random(8, 6, rng, -95.0, -35.0);
  const QuantizedRefs q = QuantizeRefs(refs);
  std::vector<double> query(6, -60.0);
  query[1] = kNull;
  query[4] = kNull;
  std::vector<int8_t> values(6), mask(6);
  double err = 0.0;
  const int32_t norm =
      la::QuantizeQueryRow(q, query.data(), values.data(), mask.data(), &err);
  EXPECT_EQ(values[1], 0);
  EXPECT_EQ(mask[1], 0);
  EXPECT_EQ(values[4], 0);
  EXPECT_EQ(mask[4], 0);
  int32_t expect_norm = 0;
  double expect_err_sq = 0.0;
  for (size_t j = 0; j < 6; ++j) {
    if (IsNull(query[j])) continue;
    EXPECT_EQ(mask[j], 1);
    expect_norm += static_cast<int32_t>(values[j]) * values[j];
    const double back = q.zero_point[j] + q.scale[j] * values[j];
    const double term = std::fabs(query[j] - back) + 0.5 * q.scale[j];
    expect_err_sq += term * term;
  }
  EXPECT_EQ(norm, expect_norm);
  EXPECT_NEAR(err, std::sqrt(expect_err_sq), 1e-12);
}

TEST(QuantizeQueryRowTest, OutOfRangeValuesClampAndChargeTheErrorBound) {
  // References all near -60; a query at 0 dBm clamps to +127 steps and the
  // whole residual must land in the error bound so the candidate band
  // still covers the true neighbors.
  const Matrix refs(4, 2, -60.0);
  const QuantizedRefs q = QuantizeRefs(refs);
  const std::vector<double> query = {0.0, -60.0};
  std::vector<int8_t> values(2), mask(2);
  double err = 0.0;
  la::QuantizeQueryRow(q, query.data(), values.data(), mask.data(), &err);
  EXPECT_EQ(values[0], 127);
  const double back = q.zero_point[0] + q.scale[0] * 127.0;
  EXPECT_GE(err, std::fabs(0.0 - back));  // clamp residual is covered
}

TEST(GemmQuantNNTest, MatchesNaiveIntegerLoop) {
  Rng rng(11);
  const size_t m = 5, k = 17, n = kQuantLanePad + 3;  // exercises the tail
  std::vector<int8_t> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<int8_t>(rng.Index(255)) ;
  for (auto& v : b) v = static_cast<int8_t>(rng.Index(255));
  std::vector<int32_t> got(m * n, -1), want(m * n, 0);
  GemmQuantNN(a.data(), b.data(), got.data(), m, k, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (size_t kx = 0; kx < k; ++kx) {
        acc += static_cast<int32_t>(a[i * k + kx]) *
               static_cast<int32_t>(b[kx * n + j]);
      }
      want[i * n + j] = acc;
    }
  }
  EXPECT_EQ(got, want);
}

TEST(MaskedQuantRowNormsTest, MatchesNaiveIntegerLoop) {
  Rng rng(13);
  const size_t m = 4, k = 9, n = kQuantLanePad * 2 + 5;
  std::vector<int8_t> mask(m * k);
  std::vector<int16_t> squares(k * n);
  for (auto& v : mask) v = rng.Index(2) == 0 ? 0 : 1;
  for (auto& v : squares) v = static_cast<int16_t>(rng.Index(16130));
  std::vector<int32_t> got(m * n, -1), want(m * n, 0);
  MaskedQuantRowNorms(mask.data(), squares.data(), got.data(), m, k, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (size_t kx = 0; kx < k; ++kx) {
        if (mask[i * k + kx]) acc += squares[kx * n + j];
      }
      want[i * n + j] = acc;
    }
  }
  EXPECT_EQ(got, want);
}

TEST(StreamingTopCTest, KeepsSmallestAscendingAndHandlesBoundaries) {
  StreamingTopC<int> top(3, 1 << 30);
  EXPECT_EQ(top.size(), 0u);
  EXPECT_EQ(top.worst(), 1 << 30);  // sentinel until filled
  for (int v : {7, 3, 9, 1, 3, 8}) top.Push(v);
  EXPECT_EQ(top.seen(), 6u);
  EXPECT_EQ(top.size(), 3u);
  EXPECT_EQ(top.worst(), 3);
  EXPECT_EQ(top.Take(), (std::vector<int>{1, 3, 3}));

  // Fewer pushes than capacity: Take returns exactly what was pushed.
  StreamingTopC<int> small(5, 1 << 30);
  small.Push(4);
  small.Push(2);
  EXPECT_EQ(small.size(), 2u);
  EXPECT_EQ(small.Take(), (std::vector<int>{2, 4}));
  EXPECT_EQ(small.worst(), 1 << 30);

  // Capacity 0 drops everything instead of invoking UB.
  StreamingTopC<int> zero(0, 1 << 30);
  zero.Push(1);
  EXPECT_EQ(zero.size(), 0u);
  EXPECT_TRUE(zero.Take().empty());
}

}  // namespace
}  // namespace rmi::la

namespace rmi::positioning {
namespace {

/// The headline acceptance property: the quantized path returns the same
/// bits as the scalar reference path, because the widened candidate band
/// plus exact rescore makes quantization a pure ranking accelerator.
TEST(QuantRankingTest, BitIdenticalToScalarAcross1kQueries) {
  const auto map = serving::MakeSyntheticServingMap(20, 15, 24, 11);
  Rng rng(3);
  KnnEstimator knn(3, false);
  KnnEstimator wknn(5, true);
  knn.Fit(map, rng);
  wknn.Fit(map, rng);
  ASSERT_EQ(knn.ranking_kernel(), RankingKernel::kQuant);  // the default

  const la::Matrix complete =
      serving::MakeSyntheticQueries(map, 500, 0.0, 21);
  const la::Matrix partial =
      serving::MakeSyntheticQueries(map, 500, 0.3, 22);
  for (const KnnEstimator* e : {&knn, &wknn}) {
    for (const la::Matrix* queries : {&complete, &partial}) {
      const std::vector<geom::Point> batch = e->EstimateBatch(*queries);
      ASSERT_EQ(batch.size(), queries->rows());
      for (size_t i = 0; i < queries->rows(); ++i) {
        const geom::Point scalar =
            e->Estimate(serving::MatrixRow(*queries, i));
        // EXPECT_EQ on doubles: bit-identical, not just close.
        EXPECT_EQ(batch[i].x, scalar.x) << e->name() << " row " << i;
        EXPECT_EQ(batch[i].y, scalar.y) << e->name() << " row " << i;
      }
    }
  }
}

TEST(QuantRankingTest, AllThreeKernelsAgreeBitForBit) {
  const auto map = serving::MakeSyntheticServingMap(14, 10, 16, 7);
  Rng rng(9);
  KnnEstimator knn(4, true);
  knn.Fit(map, rng);
  const la::Matrix queries = serving::MakeSyntheticQueries(map, 64, 0.25, 31);

  knn.set_ranking_kernel(RankingKernel::kGemm);
  const std::vector<geom::Point> gemm = knn.EstimateBatch(queries);
  knn.set_ranking_kernel(RankingKernel::kFastNN);
  const std::vector<geom::Point> fastnn = knn.EstimateBatch(queries);
  knn.set_ranking_kernel(RankingKernel::kQuant);
  const std::vector<geom::Point> quant = knn.EstimateBatch(queries);
  for (size_t i = 0; i < queries.rows(); ++i) {
    EXPECT_EQ(gemm[i].x, fastnn[i].x) << "row " << i;
    EXPECT_EQ(gemm[i].y, fastnn[i].y) << "row " << i;
    EXPECT_EQ(gemm[i].x, quant[i].x) << "row " << i;
    EXPECT_EQ(gemm[i].y, quant[i].y) << "row " << i;
  }
}

TEST(QuantRankingTest, KernelSelectionRoundTripsAndSurvivesClone) {
  KnnEstimator knn(3, false);
  EXPECT_EQ(knn.ranking_kernel(), RankingKernel::kQuant);
  knn.set_ranking_kernel(RankingKernel::kFastNN);
  EXPECT_EQ(knn.ranking_kernel(), RankingKernel::kFastNN);
  const auto map = serving::MakeSyntheticServingMap(8, 6, 8, 3);
  Rng rng(1);
  knn.Fit(map, rng);
  auto clone = knn.Clone();
  auto* cloned = dynamic_cast<KnnEstimator*>(clone.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_EQ(cloned->ranking_kernel(), RankingKernel::kFastNN);
  EXPECT_EQ(cloned->quantized().rows, knn.quantized().rows);
}

/// k (and with it the candidate count c) at or beyond the reference count
/// must degrade to rescore-everything, still bit-identical to scalar.
TEST(QuantRankingTest, KAtLeastReferenceCountStaysExact) {
  const auto map = serving::MakeSyntheticServingMap(3, 3, 6, 5);  // 9 refs
  Rng rng(2);
  for (size_t k : {9u, 15u}) {
    KnnEstimator knn(k, true);
    knn.Fit(map, rng);
    const la::Matrix queries = serving::MakeSyntheticQueries(map, 16, 0.2, 41);
    const std::vector<geom::Point> batch = knn.EstimateBatch(queries);
    for (size_t i = 0; i < queries.rows(); ++i) {
      const geom::Point scalar = knn.Estimate(serving::MatrixRow(queries, i));
      EXPECT_EQ(batch[i].x, scalar.x) << "k=" << k << " row " << i;
      EXPECT_EQ(batch[i].y, scalar.y) << "k=" << k << " row " << i;
    }
  }
}

/// Duplicate reference rows force exact distance ties; the (distance,
/// index) tie order must match the scalar path on every kernel.
TEST(QuantRankingTest, ExactDistanceTiesBreakByIndexOnEveryKernel) {
  rmap::RadioMap map(4);
  // Three distinct fingerprints, each duplicated at two RPs.
  const double base[3][4] = {{-40, -50, -60, -70},
                             {-45, -55, -65, -75},
                             {-80, -70, -60, -50}};
  for (int copy = 0; copy < 2; ++copy) {
    for (int f = 0; f < 3; ++f) {
      rmap::Record r;
      r.rssi.assign(base[f], base[f] + 4);
      r.has_rp = true;
      r.rp = geom::Point{double(f + 3 * copy), double(copy)};
      map.Add(r);
    }
  }
  Rng rng(4);
  la::Matrix queries(2, 4);
  for (size_t j = 0; j < 4; ++j) {
    queries(0, j) = base[0][j] + 1.0;
    queries(1, j) = base[2][j] - 0.5;
  }
  for (RankingKernel kernel :
       {RankingKernel::kGemm, RankingKernel::kFastNN, RankingKernel::kQuant}) {
    KnnEstimator knn(3, false);
    knn.set_ranking_kernel(kernel);
    knn.Fit(map, rng);
    const std::vector<geom::Point> batch = knn.EstimateBatch(queries);
    for (size_t i = 0; i < queries.rows(); ++i) {
      const geom::Point scalar = knn.Estimate(serving::MatrixRow(queries, i));
      EXPECT_EQ(batch[i].x, scalar.x) << "kernel " << int(kernel);
      EXPECT_EQ(batch[i].y, scalar.y) << "kernel " << int(kernel);
    }
  }
}

}  // namespace
}  // namespace rmi::positioning
