// Incremental re-imputation correctness (Imputer::ImputeIncremental):
//  * dirty-row propagation marks exactly the delta rows plus the previous
//    rows whose fingerprint neighborhoods the deltas touch;
//  * when the dirty set covers the map the call falls back to a cold
//    Impute bit-for-bit;
//  * under partial deltas the spliced result keeps clean rows verbatim and
//    stays within an accuracy budget of the cold rebuild (vs ground truth);
//  * BiSIM's warm start restores the previous rebuild's weights, fine-tunes
//    deterministically, and stays within the accuracy budget;
//  * the end-to-end update scenario's APE with incremental rebuilds is
//    within 5% of the cold-rebuild APE.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "bisim/bisim.h"
#include "common/missing.h"
#include "common/rng.h"
#include "eval/update_scenario.h"
#include "imputers/autocorrelation.h"
#include "imputers/imputer.h"
#include "imputers/traditional.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/synthetic.h"

namespace rmi::imputers {
namespace {

/// A sparse copy of a complete map: MAR holes punched per `missing_rssi`,
/// RPs dropped per `missing_rp`; the amended mask marks the holes kMar.
struct SparseCase {
  rmap::RadioMap map;
  rmap::MaskMatrix mask;
};

SparseCase PunchHoles(const rmap::RadioMap& complete, double missing_rssi,
                      double missing_rp, uint64_t seed) {
  SparseCase c{complete,
               rmap::MaskMatrix(complete.size(), complete.num_aps())};
  Rng rng(seed);
  for (size_t i = 0; i < c.map.size(); ++i) {
    rmap::Record& r = c.map.record(i);
    for (size_t j = 0; j < c.map.num_aps(); ++j) {
      if (rng.Bernoulli(missing_rssi)) {
        r.rssi[j] = kNull;
        c.mask.set(i, j, rmap::MaskValue::kMar);
      }
    }
    if (r.NumObserved() == 0) {
      r.rssi[0] = complete.record(i).rssi[0];
      c.mask.set(i, 0, rmap::MaskValue::kObserved);
    }
    if (rng.Bernoulli(missing_rp)) {
      r.has_rp = false;
      r.rp = geom::Point{};
    }
  }
  return c;
}

/// Mean absolute error of the imputed MAR cells against the complete map.
double MarMae(const rmap::RadioMap& imputed, const rmap::RadioMap& truth,
              const rmap::MaskMatrix& mask) {
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < imputed.size(); ++i) {
    for (size_t j = 0; j < imputed.num_aps(); ++j) {
      if (mask.at(i, j) != rmap::MaskValue::kMar) continue;
      sum += std::fabs(imputed.record(i).rssi[j] - truth.record(i).rssi[j]);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

/// Splits `complete` into a base prefix and delta suffix, punches holes
/// into both, and returns (merged sparse map, mask, truth) with the base
/// rows first — the exact shape MapUpdater hands ImputeIncremental.
struct MergedCase {
  rmap::RadioMap merged;
  rmap::MaskMatrix mask;
  rmap::RadioMap base;        // sparse prefix only
  rmap::MaskMatrix base_mask;
  size_t num_previous = 0;
};

MergedCase SplitCase(const rmap::RadioMap& complete, size_t num_deltas,
                     uint64_t seed) {
  const SparseCase sparse = PunchHoles(complete, 0.2, 0.2, seed);
  MergedCase c;
  c.num_previous = complete.size() - num_deltas;
  c.merged = sparse.map;
  c.mask = sparse.mask;
  c.base = rmap::RadioMap(complete.num_aps());
  c.base_mask = rmap::MaskMatrix(c.num_previous, complete.num_aps());
  for (size_t i = 0; i < c.num_previous; ++i) {
    c.base.Add(sparse.map.record(i));
    for (size_t j = 0; j < complete.num_aps(); ++j) {
      c.base_mask.set(i, j, sparse.mask.at(i, j));
    }
  }
  return c;
}

TEST(PropagateDirtyRowsTest, MarksDeltaNeighborhoodsOnly) {
  // Two well-separated fingerprint clusters; the single delta lands in
  // cluster A, so only A rows (its nearest neighbors) may go dirty.
  rmap::RadioMap merged(2);
  auto add = [&](double a, double b) {
    rmap::Record r;
    r.rssi = {a, b};
    r.has_rp = true;
    r.rp = {0, 0};
    merged.Add(r);
  };
  for (int i = 0; i < 4; ++i) add(-50.0 - i, -60.0 - i);   // cluster A
  for (int i = 0; i < 4; ++i) add(-90.0 - i, -95.0 + i);   // cluster B
  add(-51.5, -61.5);                                        // delta, near A
  rmap::MaskMatrix mask(merged.size(), 2);
  const rmap::RadioMap previous = [&] {
    rmap::RadioMap p(2);
    for (size_t i = 0; i < 8; ++i) p.Add(merged.record(i));
    return p;
  }();

  const std::vector<uint8_t> dirty =
      PropagateDirtyRows(merged, mask, previous, 8, /*dirty_neighbors=*/2);
  ASSERT_EQ(dirty.size(), 9u);
  EXPECT_EQ(dirty[8], 1) << "the delta row itself is always dirty";
  size_t dirty_a = 0, dirty_b = 0;
  for (size_t i = 0; i < 4; ++i) dirty_a += dirty[i];
  for (size_t i = 4; i < 8; ++i) dirty_b += dirty[i];
  EXPECT_EQ(dirty_a, 2u) << "exactly k nearest previous rows go dirty";
  EXPECT_EQ(dirty_b, 0u) << "the far cluster must stay clean";
}

TEST(IncrementalImputeTest, AllRowsDirtyEqualsColdImputeBitForBit) {
  const auto complete = serving::MakeSyntheticServingMap(10, 8, 8, 77);
  const MergedCase c = SplitCase(complete, /*num_deltas=*/16, 78);
  const MiceImputer mice;
  const LinearInterpolationImputer li;
  for (const Imputer* imputer : {static_cast<const Imputer*>(&mice),
                                 static_cast<const Imputer*>(&li)}) {
    Rng cold_rng(3), inc_rng(3);
    const auto cold = imputer->Impute(c.merged, c.mask, cold_rng);

    Rng prev_rng(4);
    const auto previous = imputer->Impute(c.base, c.base_mask, prev_rng);
    IncrementalContext ctx;
    ctx.previous_imputed = &previous;
    ctx.num_previous_records = c.num_previous;
    ctx.dirty_neighbors = c.merged.size();  // every previous row goes dirty
    const auto inc = imputer->ImputeIncremental(c.merged, c.mask, ctx, inc_rng);

    ASSERT_EQ(inc.size(), cold.size()) << imputer->name();
    for (size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(0, std::memcmp(inc.record(i).rssi.data(),
                               cold.record(i).rssi.data(),
                               cold.num_aps() * sizeof(double)))
          << imputer->name() << " record " << i;
    }
  }
}

TEST(IncrementalImputeTest, PartialDeltasSpliceCleanRowsAndStayInBudget) {
  const auto complete = serving::MakeSyntheticServingMap(14, 10, 10, 91);
  const MergedCase c = SplitCase(complete, /*num_deltas=*/10, 92);
  const MiceImputer mice;

  Rng prev_rng(5);
  const auto previous = mice.Impute(c.base, c.base_mask, prev_rng);
  IncrementalContext ctx;
  ctx.previous_imputed = &previous;
  ctx.num_previous_records = c.num_previous;
  ctx.dirty_neighbors = 4;
  Rng inc_rng(6);
  const auto inc = mice.ImputeIncremental(c.merged, c.mask, ctx, inc_rng);

  // Complete output, observed cells untouched.
  ASSERT_EQ(inc.size(), c.merged.size());
  const std::vector<uint8_t> dirty = PropagateDirtyRows(
      c.merged, c.mask, previous, c.num_previous, ctx.dirty_neighbors);
  size_t clean_checked = 0;
  for (size_t i = 0; i < inc.size(); ++i) {
    EXPECT_TRUE(inc.record(i).has_rp);
    for (size_t j = 0; j < inc.num_aps(); ++j) {
      EXPECT_FALSE(IsNull(inc.record(i).rssi[j]));
      if (c.mask.at(i, j) == rmap::MaskValue::kObserved) {
        EXPECT_DOUBLE_EQ(inc.record(i).rssi[j], c.merged.record(i).rssi[j]);
      } else if (i < c.num_previous && !dirty[i]) {
        // Clean rows splice verbatim from the previous imputation.
        EXPECT_DOUBLE_EQ(inc.record(i).rssi[j], previous.record(i).rssi[j]);
        ++clean_checked;
      }
    }
  }
  EXPECT_GT(clean_checked, 0u) << "the partial case must have clean rows";

  // Accuracy budget vs the cold rebuild, both measured against truth.
  Rng cold_rng(6);
  const auto cold = mice.Impute(c.merged, c.mask, cold_rng);
  const double inc_mae = MarMae(inc, complete, c.mask);
  const double cold_mae = MarMae(cold, complete, c.mask);
  EXPECT_LT(inc_mae, cold_mae * 1.25 + 0.5)
      << "incremental " << inc_mae << " vs cold " << cold_mae;
}

TEST(IncrementalImputeTest, BiSimWarmStartIsDeterministicAndInBudget) {
  const auto complete = serving::MakeSyntheticServingMap(8, 6, 6, 33);
  const MergedCase merged = SplitCase(complete, /*num_deltas=*/8, 34);

  bisim::BiSimConfig cfg;
  cfg.hidden = 8;
  cfg.attention_hidden = 8;
  cfg.epochs = 10;
  cfg.fine_tune_epochs = 3;
  cfg.num_threads = 1;
  const bisim::BiSimImputer imputer(cfg);

  // First build (the base prefix only): no previous state — cold training,
  // state exported.
  std::shared_ptr<const ImputerState> state;
  IncrementalContext first_ctx;
  first_ctx.state_out = &state;
  Rng first_rng(7), cold_rng(7);
  const auto first = imputer.ImputeIncremental(merged.base, merged.base_mask,
                                               first_ctx, first_rng);
  const auto cold = imputer.Impute(merged.base, merged.base_mask, cold_rng);
  ASSERT_EQ(first.size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(first.record(i).rssi.data(),
                             cold.record(i).rssi.data(),
                             cold.num_aps() * sizeof(double)))
        << "first incremental build must equal cold training, record " << i;
  }
  const auto* warm_state = dynamic_cast<const bisim::BiSimWarmState*>(
      state.get());
  ASSERT_NE(warm_state, nullptr);
  EXPECT_EQ(warm_state->num_aps, complete.num_aps());
  EXPECT_FALSE(warm_state->weights.empty());

  // Second build: the merged map (base + 8 fresh delta rows) with the
  // previous imputation and the trained weights as warm start.
  IncrementalContext warm_ctx;
  warm_ctx.previous_imputed = &first;
  warm_ctx.num_previous_records = merged.num_previous;
  warm_ctx.previous_state = state;
  std::shared_ptr<const ImputerState> state2;
  warm_ctx.state_out = &state2;

  auto run_warm = [&] {
    Rng rng(9);
    return imputer.ImputeIncremental(merged.merged, merged.mask, warm_ctx,
                                     rng);
  };
  const auto warm1 = run_warm();
  const auto warm2 = run_warm();
  ASSERT_EQ(warm1.size(), merged.merged.size());
  for (size_t i = 0; i < warm1.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(warm1.record(i).rssi.data(),
                             warm2.record(i).rssi.data(),
                             warm1.num_aps() * sizeof(double)))
        << "warm fine-tune must be deterministic, record " << i;
    EXPECT_TRUE(warm1.record(i).has_rp);
    for (size_t j = 0; j < warm1.num_aps(); ++j) {
      EXPECT_FALSE(IsNull(warm1.record(i).rssi[j]));
    }
  }
  EXPECT_NE(dynamic_cast<const bisim::BiSimWarmState*>(state2.get()), nullptr);

  // Accuracy budget: the 3-epoch fine-tune must land near the full cold
  // retrain of the merged map (both vs ground truth).
  Rng cold2_rng(9);
  const auto cold2 = imputer.Impute(merged.merged, merged.mask, cold2_rng);
  const double warm_mae = MarMae(warm1, complete, merged.mask);
  const double cold_mae = MarMae(cold2, complete, merged.mask);
  EXPECT_LT(warm_mae, cold_mae * 1.5 + 1.0)
      << "warm " << warm_mae << " vs cold " << cold_mae;
}

TEST(IncrementalImputeTest, RecordDroppingBackendNeverSplicesMisaligned) {
  // CaseDeletion drops null-RP records, so its output is *shorter* than
  // the base it imputed — the incremental splice would pair fingerprints
  // with the wrong records' positions. The updater reports the merged-map
  // row count the previous imputation claims to cover; the base
  // implementation's alignment guard must see the mismatch and rebuild
  // cold, publishing only correctly-positioned references.
  serving::ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  CaseDeletionImputer cd;
  serving::MapUpdater updater(
      &store, &differentiator, &cd,
      [] { return std::make_unique<positioning::KnnEstimator>(3, true); });

  rmap::RadioMap base = serving::MakeSyntheticServingMap(8, 6, 6, 71);
  size_t dropped = 0;
  for (size_t i = 0; i < base.size(); i += 5) {
    base.record(i).has_rp = false;
    base.record(i).rp = geom::Point{};
    ++dropped;
  }
  const rmap::ShardId id{0, 0};
  updater.RegisterShard(id, base);
  const auto v1 = store.Current(id);
  ASSERT_EQ(v1->num_refs(), base.size() - dropped);

  // Fresh deltas (all with RPs) trip a second — incremental — rebuild.
  const auto truth = serving::MakeSyntheticServingMap(8, 6, 6, 71);
  Rng rng(13);
  for (size_t i = 0; i < 6; ++i) {
    rmap::Record obs = truth.record(rng.Index(truth.size()));
    obs.id = rmap::Record::kUnassignedId;
    obs.time += 1000.0;
    updater.Ingest(id, obs);
  }
  ASSERT_TRUE(updater.RebuildNow(id));
  const auto v2 = store.Current(id);
  ASSERT_EQ(v2->version, 2u);

  // Every published reference must carry the position of the record whose
  // fingerprint it is — a misaligned splice pairs them off-by-`dropped`.
  for (size_t r = 0; r < v2->num_refs(); ++r) {
    bool matched = false;
    for (size_t i = 0; i < truth.size() && !matched; ++i) {
      bool same = true;
      for (size_t j = 0; j < truth.num_aps(); ++j) {
        if (v2->fingerprints()(r, j) != truth.record(i).rssi[j]) {
          same = false;
          break;
        }
      }
      if (same) {
        EXPECT_NEAR(v2->positions[r].x, truth.record(i).rp.x, 1e-12);
        EXPECT_NEAR(v2->positions[r].y, truth.record(i).rp.y, 1e-12);
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << "published fingerprint " << r
                         << " matches no surveyed record";
  }
}

TEST(IncrementalImputeTest, UpdateScenarioApeWithinFivePercentOfCold) {
  cluster::MarOnlyDifferentiator differentiator;
  MiceImputer imputer;
  const auto factory = [] {
    return std::make_unique<positioning::KnnEstimator>(3, true);
  };
  eval::UpdateScenarioOptions opt;
  opt.resurvey_fraction = 0.35;  // partial deltas: the incremental path
                                 // must engage, not fall back to cold
  opt.incremental_rebuild = false;
  const auto cold = eval::RunAccuracyUnderUpdate(differentiator, imputer,
                                                 factory, opt);
  opt.incremental_rebuild = true;
  const auto inc = eval::RunAccuracyUnderUpdate(differentiator, imputer,
                                                factory, opt);

  // Both repair the drifted shard...
  EXPECT_LT(cold.updated_ape, cold.stale_ape);
  EXPECT_LT(inc.updated_ape, inc.stale_ape);
  // ...and the incremental rebuild's accuracy is within the 5% budget of
  // the cold rebuild (plus 5 cm of absolute slack for near-zero APEs).
  EXPECT_LE(std::fabs(inc.updated_ape - cold.updated_ape),
            0.05 * cold.updated_ape + 0.05)
      << "incremental " << inc.updated_ape << " vs cold " << cold.updated_ape;
}

}  // namespace
}  // namespace rmi::imputers
