// Property-based sweeps over the linear-algebra substrate: algebraic
// identities checked on randomized inputs across shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "la/matrix.h"

namespace rmi::la {
namespace {

class RandomShapeTest : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<uint64_t>(1000 + GetParam())};

  Matrix Rand(size_t r, size_t c) { return Matrix::Random(r, c, rng_); }
  std::pair<size_t, size_t> Shape() {
    return {1 + rng_.Index(6), 1 + rng_.Index(6)};
  }
};

TEST_P(RandomShapeTest, AdditionCommutesAndAssociates) {
  auto [r, c] = Shape();
  Matrix a = Rand(r, c), b = Rand(r, c), d = Rand(r, c);
  EXPECT_NEAR(Matrix::MaxAbsDiff(a + b, b + a), 0.0, 1e-14);
  EXPECT_NEAR(Matrix::MaxAbsDiff((a + b) + d, a + (b + d)), 0.0, 1e-13);
}

TEST_P(RandomShapeTest, MatMulDistributesOverAddition) {
  const size_t n = 1 + rng_.Index(5);
  const size_t k = 1 + rng_.Index(5);
  const size_t m = 1 + rng_.Index(5);
  Matrix a = Rand(n, k);
  Matrix b = Rand(k, m), c = Rand(k, m);
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.MatMul(b + c), a.MatMul(b) + a.MatMul(c)),
              0.0, 1e-12);
}

TEST_P(RandomShapeTest, ScalarFactorsOutOfMatMul) {
  const size_t n = 1 + rng_.Index(4), k = 1 + rng_.Index(4);
  Matrix a = Rand(n, k), b = Rand(k, 3);
  const double s = rng_.Uniform(-3, 3);
  EXPECT_NEAR(Matrix::MaxAbsDiff((a * s).MatMul(b), a.MatMul(b) * s), 0.0,
              1e-12);
}

TEST_P(RandomShapeTest, CwiseProductCommutes) {
  auto [r, c] = Shape();
  Matrix a = Rand(r, c), b = Rand(r, c);
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.CwiseProduct(b), b.CwiseProduct(a)), 0.0,
              1e-14);
}

TEST_P(RandomShapeTest, QuotientInvertsProduct) {
  auto [r, c] = Shape();
  Matrix a = Rand(r, c);
  Matrix b = Rand(r, c).Map([](double v) { return v + (v >= 0 ? 1.5 : -1.5); });
  EXPECT_NEAR(Matrix::MaxAbsDiff(a.CwiseProduct(b).CwiseQuotient(b), a), 0.0,
              1e-12);
}

TEST_P(RandomShapeTest, ConcatThenSliceIsIdentity) {
  const size_t r = 1 + rng_.Index(4);
  Matrix a = Rand(r, 1 + rng_.Index(4));
  Matrix b = Rand(r, 1 + rng_.Index(4));
  Matrix cat = a.ConcatCols(b);
  EXPECT_NEAR(Matrix::MaxAbsDiff(cat.SliceCols(0, a.cols()), a), 0.0, 0.0);
  EXPECT_NEAR(Matrix::MaxAbsDiff(cat.SliceCols(a.cols(), cat.cols()), b), 0.0,
              0.0);
  Matrix vcat = a.ConcatRows(Rand(2, a.cols()));
  EXPECT_NEAR(Matrix::MaxAbsDiff(vcat.SliceRows(0, r), a), 0.0, 0.0);
}

TEST_P(RandomShapeTest, AddRowBroadcastMatchesExplicitLoop) {
  auto [r, c] = Shape();
  Matrix x = Rand(r, c);
  Matrix bias = Rand(1, c);
  Matrix expected = x;
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) expected(i, j) += bias(0, j);
  }
  EXPECT_NEAR(Matrix::MaxAbsDiff(x.AddRowBroadcast(bias), expected), 0.0, 0.0);
}

TEST_P(RandomShapeTest, FrobeniusNormTriangleInequality) {
  auto [r, c] = Shape();
  Matrix a = Rand(r, c), b = Rand(r, c);
  EXPECT_LE((a + b).FrobeniusNorm(),
            a.FrobeniusNorm() + b.FrobeniusNorm() + 1e-12);
}

TEST_P(RandomShapeTest, SumLinearity) {
  auto [r, c] = Shape();
  Matrix a = Rand(r, c), b = Rand(r, c);
  EXPECT_NEAR((a + b).Sum(), a.Sum() + b.Sum(), 1e-12);
  EXPECT_NEAR((a * 2.5).Sum(), 2.5 * a.Sum(), 1e-12);
}

TEST_P(RandomShapeTest, RidgeSolutionSatisfiesNormalEquations) {
  const size_t n = 8 + rng_.Index(8);
  const size_t k = 1 + rng_.Index(4);
  Matrix a = Rand(n, k);
  Matrix b = Rand(n, 1);
  const double lambda = rng_.Uniform(0.01, 1.0);
  Matrix w = RidgeRegression(a, b, lambda);
  // (A^T A + lambda I) w == A^T b
  Matrix lhs = a.Transpose().MatMul(a).MatMul(w) + w * lambda;
  Matrix rhs = a.Transpose().MatMul(b);
  EXPECT_NEAR(Matrix::MaxAbsDiff(lhs, rhs), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShapeTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace rmi::la
