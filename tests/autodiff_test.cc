#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autodiff/optimizer.h"
#include "autodiff/tensor.h"

namespace rmi::ad {
namespace {

/// Central-difference gradient check: perturbs every entry of `param` and
/// compares numeric gradients of `scalar_fn` with the analytic ones.
void CheckGradient(Tensor param,
                   const std::function<Tensor()>& scalar_fn,
                   double tol = 1e-6) {
  Tensor loss = scalar_fn();
  param.ZeroGrad();
  loss.Backward();
  const la::Matrix analytic = param.grad();

  const double eps = 1e-6;
  la::Matrix& w = param.mutable_value();
  for (size_t i = 0; i < w.size(); ++i) {
    const double orig = w.data()[i];
    w.data()[i] = orig + eps;
    const double up = scalar_fn().value()(0, 0);
    w.data()[i] = orig - eps;
    const double down = scalar_fn().value()(0, 0);
    w.data()[i] = orig;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tol)
        << "entry " << i;
  }
}

TEST(TensorTest, ConstantAndParamFlags) {
  Tensor c = Tensor::Constant(la::Matrix{{1, 2}});
  Tensor p = Tensor::Param(la::Matrix{{3, 4}});
  EXPECT_FALSE(c.requires_grad());
  EXPECT_TRUE(p.requires_grad());
  Tensor sum = Add(c, p);
  EXPECT_TRUE(sum.requires_grad());
  Tensor cc = Add(c, c);
  EXPECT_FALSE(cc.requires_grad());
}

TEST(TensorTest, ForwardValues) {
  Tensor a = Tensor::Constant(la::Matrix{{1, 2}});
  Tensor b = Tensor::Constant(la::Matrix{{3, 4}});
  EXPECT_DOUBLE_EQ(Add(a, b).value()(0, 1), 6);
  EXPECT_DOUBLE_EQ(Sub(a, b).value()(0, 0), -2);
  EXPECT_DOUBLE_EQ(Mul(a, b).value()(0, 1), 8);
  EXPECT_DOUBLE_EQ(Scale(a, 3).value()(0, 0), 3);
  EXPECT_DOUBLE_EQ(Sum(a).value()(0, 0), 3);
  EXPECT_DOUBLE_EQ(Mean(b).value()(0, 0), 3.5);
}

TEST(TensorTest, SigmoidTanhReluExpValues) {
  Tensor x = Tensor::Constant(la::Matrix{{0.0, -1.0, 2.0}});
  EXPECT_DOUBLE_EQ(Sigmoid(x).value()(0, 0), 0.5);
  EXPECT_NEAR(Tanh(x).value()(0, 1), std::tanh(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(Relu(x).value()(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(Relu(x).value()(0, 2), 2.0);
  EXPECT_NEAR(Exp(x).value()(0, 2), std::exp(2.0), 1e-12);
}

TEST(TensorTest, SoftmaxRowsSumsToOne) {
  Tensor x = Tensor::Constant(la::Matrix{{1, 2, 3}, {-5, 0, 5}});
  const la::Matrix y = SoftmaxRows(x).value();
  for (size_t i = 0; i < 2; ++i) {
    double s = 0;
    for (size_t j = 0; j < 3; ++j) {
      s += y(i, j);
      EXPECT_GT(y(i, j), 0.0);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
  EXPECT_GT(y(0, 2), y(0, 0));
}

TEST(TensorTest, SoftmaxNumericallyStable) {
  Tensor x = Tensor::Constant(la::Matrix{{1000.0, 1000.0}});
  const la::Matrix y = SoftmaxRows(x).value();
  EXPECT_NEAR(y(0, 0), 0.5, 1e-12);
}

TEST(TensorTest, MatMulChainGradientFlow) {
  Rng rng(1);
  Tensor w = Tensor::Param(la::Matrix::Random(3, 2, rng));
  Tensor x = Tensor::Constant(la::Matrix::Random(1, 3, rng));
  Tensor loss = Sum(MatMul(x, w));
  loss.Backward();
  // d(sum(xW))/dW = x^T 1.
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(w.grad()(i, j), x.value()(0, i), 1e-12);
    }
  }
}

TEST(TensorTest, GradientAccumulatesAcrossBackwards) {
  Tensor p = Tensor::Param(la::Matrix{{2.0}});
  Tensor l1 = Sum(Mul(p, p));
  l1.Backward();
  const double g1 = p.grad()(0, 0);
  Tensor l2 = Sum(Mul(p, p));
  l2.Backward();
  EXPECT_NEAR(p.grad()(0, 0), 2 * g1, 1e-12);
  p.ZeroGrad();
  EXPECT_DOUBLE_EQ(p.grad()(0, 0), 0.0);
}

// --- Parameterized gradient checks over ops. -----------------------------

struct OpCase {
  const char* name;
  std::function<Tensor(const Tensor&)> op;
};

class GradCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(GradCheckTest, UnaryOps) {
  static const std::vector<OpCase> kCases = {
      {"sigmoid", [](const Tensor& x) { return Mean(Sigmoid(x)); }},
      {"tanh", [](const Tensor& x) { return Mean(Tanh(x)); }},
      {"exp", [](const Tensor& x) { return Mean(Exp(x)); }},
      {"scale", [](const Tensor& x) { return Mean(Scale(x, -2.5)); }},
      {"sum", [](const Tensor& x) { return Sum(x); }},
      {"softmax",
       [](const Tensor& x) { return Mean(Mul(SoftmaxRows(x), SoftmaxRows(x))); }},
      {"slice", [](const Tensor& x) { return Mean(SliceCols(x, 1, 3)); }},
      {"mse_self",
       [](const Tensor& x) {
         return Mse(x, Tensor::Constant(la::Matrix(1, 4, 0.3)));
       }},
  };
  Rng rng(40 + GetParam());
  for (const OpCase& c : kCases) {
    Tensor x = Tensor::Param(la::Matrix::Random(1, 4, rng, -1.5, 1.5));
    CheckGradient(x, [&]() { return c.op(x); });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradCheckTest, ::testing::Range(0, 3));

TEST(GradCheckBinaryTest, AddSubMul) {
  Rng rng(7);
  Tensor a = Tensor::Param(la::Matrix::Random(2, 3, rng));
  Tensor b = Tensor::Param(la::Matrix::Random(2, 3, rng));
  CheckGradient(a, [&]() { return Mean(Mul(Add(a, b), Sub(a, b))); });
  CheckGradient(b, [&]() { return Mean(Mul(Add(a, b), Sub(a, b))); });
}

TEST(GradCheckBinaryTest, MatMulBothSides) {
  Rng rng(8);
  Tensor a = Tensor::Param(la::Matrix::Random(2, 3, rng));
  Tensor b = Tensor::Param(la::Matrix::Random(3, 4, rng));
  CheckGradient(a, [&]() { return Mean(MatMul(a, b)); });
  CheckGradient(b, [&]() { return Mean(Mul(MatMul(a, b), MatMul(a, b))); });
}

TEST(GradCheckBinaryTest, ConcatCols) {
  Rng rng(9);
  Tensor a = Tensor::Param(la::Matrix::Random(1, 2, rng));
  Tensor b = Tensor::Param(la::Matrix::Random(1, 3, rng));
  auto fn = [&]() {
    Tensor c = ConcatCols(a, b);
    return Mean(Mul(c, c));
  };
  CheckGradient(a, fn);
  CheckGradient(b, fn);
}

TEST(GradCheckBinaryTest, AddRowBroadcast) {
  Rng rng(10);
  Tensor x = Tensor::Param(la::Matrix::Random(3, 2, rng));
  Tensor bias = Tensor::Param(la::Matrix::Random(1, 2, rng));
  auto fn = [&]() {
    Tensor y = AddRowBroadcast(x, bias);
    return Mean(Mul(y, y));
  };
  CheckGradient(x, fn);
  CheckGradient(bias, fn);
}

TEST(GradCheckBinaryTest, ScaleBy) {
  Rng rng(11);
  Tensor s = Tensor::Param(la::Matrix{{0.7}});
  Tensor x = Tensor::Param(la::Matrix::Random(1, 4, rng));
  auto fn = [&]() {
    Tensor y = ScaleBy(s, x);
    return Mean(Mul(y, y));
  };
  CheckGradient(s, fn);
  CheckGradient(x, fn);
}

TEST(GradCheckBinaryTest, ReluAtNonKink) {
  Rng rng(12);
  // Keep values away from the kink for finite differencing.
  la::Matrix v = la::Matrix::Random(1, 4, rng);
  for (size_t i = 0; i < v.size(); ++i) {
    if (std::fabs(v.data()[i]) < 0.1) v.data()[i] = 0.5;
  }
  Tensor x = Tensor::Param(v);
  CheckGradient(x, [&]() { return Mean(Relu(x)); });
}

TEST(GradCheckBinaryTest, MaskedMse) {
  Rng rng(13);
  Tensor a = Tensor::Param(la::Matrix::Random(1, 5, rng));
  Tensor b = Tensor::Param(la::Matrix::Random(1, 5, rng));
  la::Matrix mask{{1, 0, 1, 0, 1}};
  auto fn = [&]() { return MaskedMse(a, b, mask); };
  CheckGradient(a, fn);
  CheckGradient(b, fn);
  // Masked-out entries get zero gradient.
  Tensor loss = fn();
  a.ZeroGrad();
  loss.Backward();
  EXPECT_DOUBLE_EQ(a.grad()(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.grad()(0, 3), 0.0);
}

TEST(GradCheckBinaryTest, BceWithLogits) {
  Rng rng(14);
  Tensor x = Tensor::Param(la::Matrix::Random(1, 4, rng, -2, 2));
  la::Matrix targets{{1, 0, 1, 0}};
  CheckGradient(x, [&]() { return BceWithLogits(x, targets); }, 1e-5);
}

TEST(BceTest, StableForExtremeLogits) {
  Tensor x = Tensor::Param(la::Matrix{{500.0, -500.0}});
  la::Matrix t{{1.0, 0.0}};
  Tensor loss = BceWithLogits(x, t);
  EXPECT_TRUE(std::isfinite(loss.value()(0, 0)));
  EXPECT_NEAR(loss.value()(0, 0), 0.0, 1e-9);
  loss.Backward();
  EXPECT_TRUE(x.grad().AllFinite());
}

TEST(TensorTest, DiamondGraphAccumulates) {
  // y = x*x + x*x reuses x twice; gradient must be 4x.
  Tensor x = Tensor::Param(la::Matrix{{3.0}});
  Tensor sq = Mul(x, x);
  Tensor loss = Sum(Add(sq, sq));
  loss.Backward();
  EXPECT_NEAR(x.grad()(0, 0), 12.0, 1e-12);
}

TEST(AdamTest, MinimizesQuadratic) {
  Tensor x = Tensor::Param(la::Matrix{{5.0, -3.0}});
  Adam opt({x}, 0.1);
  for (int i = 0; i < 500; ++i) {
    Tensor target = Tensor::Constant(la::Matrix{{1.0, 2.0}});
    Tensor loss = Mse(x, target);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value()(0, 0), 1.0, 1e-2);
  EXPECT_NEAR(x.value()(0, 1), 2.0, 1e-2);
}

TEST(SgdTest, MinimizesQuadratic) {
  Tensor x = Tensor::Param(la::Matrix{{4.0}});
  Sgd opt({x}, 0.1);
  for (int i = 0; i < 200; ++i) {
    Tensor loss = Mse(x, Tensor::Constant(la::Matrix{{-1.0}}));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value()(0, 0), -1.0, 1e-3);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Tensor x = Tensor::Param(la::Matrix{{3.0, 4.0}});
  Tensor loss = Scale(Sum(Mul(x, x)), 10.0);
  loss.Backward();
  ClipGradNorm({x}, 1.0);
  double norm = 0;
  for (size_t i = 0; i < 2; ++i) norm += x.grad()(0, i) * x.grad()(0, i);
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-9);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor x = Tensor::Param(la::Matrix{{0.1}});
  Tensor loss = Sum(x);
  loss.Backward();
  ClipGradNorm({x}, 10.0);
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 1.0);
}

TEST(AdamTest, ZeroGradDropsAccumulation) {
  Tensor x = Tensor::Param(la::Matrix{{1.0}});
  Adam opt({x}, 0.1);
  Sum(x).Backward();
  opt.ZeroGrad();
  EXPECT_DOUBLE_EQ(x.grad()(0, 0), 0.0);
}

}  // namespace
}  // namespace rmi::ad
