// MapUpdater concurrency: the bounded rebuild pool really overlaps
// independent shards, per-shard rebuilds stay serialized and deterministic
// (private RNG streams — scheduling cannot perturb published snapshots),
// ingest never blocks on an in-flight rebuild, Stop() drains the batch in
// flight, per-shard phase stats are populated, and consecutive rebuilds on
// one thread reuse the autodiff Workspace arena (zero steady-state matrix
// allocations). This suite — with serving_test and sharded_serving_test —
// is what the CI TSan job instruments.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "autodiff/workspace.h"
#include "bisim/bisim.h"
#include "clustering/differentiation.h"
#include "common/missing.h"
#include "common/rng.h"
#include "common/timer.h"
#include "imputers/autocorrelation.h"
#include "imputers/traditional.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/synthetic.h"

namespace rmi::serving {
namespace {

EstimatorFactory WknnFactory(size_t k = 3) {
  return [k] { return std::make_unique<positioning::KnnEstimator>(k, true); };
}

template <typename Pred>
bool WaitFor(Pred pred, double timeout_s = 20.0) {
  Timer t;
  while (!pred()) {
    if (t.ElapsedSeconds() > timeout_s) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Imputer that tracks how many Impute calls run concurrently (sleep-based
/// so overlap shows even on a single hardware core) and delegates to LI.
class ConcurrencyProbeImputer : public imputers::Imputer {
 public:
  explicit ConcurrencyProbeImputer(double sleep_ms) : sleep_ms_(sleep_ms) {}

  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override {
    const int now = concurrent_.fetch_add(1, std::memory_order_acq_rel) + 1;
    int seen = max_concurrent_.load(std::memory_order_relaxed);
    while (seen < now && !max_concurrent_.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms_));
    rmap::RadioMap out = inner_.Impute(map, amended_mask, rng);
    concurrent_.fetch_sub(1, std::memory_order_acq_rel);
    return out;
  }
  std::string name() const override { return "probe"; }

  int max_concurrent() const { return max_concurrent_.load(); }

 private:
  double sleep_ms_;
  imputers::LinearInterpolationImputer inner_;
  mutable std::atomic<int> concurrent_{0};
  mutable std::atomic<int> max_concurrent_{0};
};

/// Ingests one volume-trigger batch of fresh observations into `id`.
void IngestBatch(MapUpdater* updater, const rmap::ShardId& id,
                 const rmap::RadioMap& truth, size_t count, Rng* rng,
                 double time_offset) {
  for (size_t i = 0; i < count; ++i) {
    rmap::Record obs = truth.record(rng->Index(truth.size()));
    obs.id = rmap::Record::kUnassignedId;
    obs.time += time_offset;
    updater->Ingest(id, std::move(obs));
  }
}

TEST(UpdaterConcurrencyTest, IndependentShardsRebuildConcurrently) {
  const size_t kShards = 4;
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  ConcurrencyProbeImputer imputer(/*sleep_ms=*/60.0);
  MapUpdaterOptions opt;
  opt.min_new_observations = 4;
  opt.poll_interval_ms = 0.5;
  opt.rebuild_threads = kShards;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);

  std::vector<rmap::RadioMap> maps;
  for (size_t s = 0; s < kShards; ++s) {
    maps.push_back(MakeSyntheticServingMap(8, 6, 6, 100 + s));
    updater.RegisterShard(rmap::ShardId{0, int32_t(s)}, maps.back());
  }
  // Registration rebuilds run on this thread, one at a time.
  EXPECT_EQ(imputer.max_concurrent(), 1);

  // All four batches land *before* the loop starts, so its first poll
  // finds the full tripped set and must fan it out — a Start-first
  // ordering would let a slow runner (the CI TSan job) observe the shards
  // tripping one by one and take the single-shard direct path each time.
  Rng rng(7);
  for (size_t s = 0; s < kShards; ++s) {
    IngestBatch(&updater, rmap::ShardId{0, int32_t(s)}, maps[s], 4, &rng,
                100.0);
  }
  updater.Start();
  ASSERT_TRUE(WaitFor([&] {
    return updater.Stats().rebuilds_completed >= 2 * kShards;
  }));
  updater.Stop();

  // The tripped batch fanned out over the pool: rebuilds genuinely
  // overlapped instead of serializing on the trigger thread.
  EXPECT_GE(imputer.max_concurrent(), 2)
      << "pooled rebuilds never ran concurrently";
  const MapUpdaterStats stats = updater.Stats();
  EXPECT_EQ(stats.rebuilds_started, stats.rebuilds_completed);
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GE(store.Current(rmap::ShardId{0, int32_t(s)})->version, 2u);
  }
}

TEST(UpdaterConcurrencyTest, SingleThreadPoolKeepsRebuildsSerialized) {
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  ConcurrencyProbeImputer imputer(/*sleep_ms=*/20.0);
  MapUpdaterOptions opt;
  opt.min_new_observations = 4;
  opt.poll_interval_ms = 0.5;
  opt.rebuild_threads = 1;  // the pre-pool serialized behavior
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);

  std::vector<rmap::RadioMap> maps;
  for (int s = 0; s < 3; ++s) {
    maps.push_back(MakeSyntheticServingMap(8, 6, 6, 200 + s));
    updater.RegisterShard(rmap::ShardId{1, s}, maps.back());
  }
  updater.Start();
  Rng rng(8);
  for (int s = 0; s < 3; ++s) {
    IngestBatch(&updater, rmap::ShardId{1, s}, maps[s], 4, &rng, 100.0);
  }
  ASSERT_TRUE(
      WaitFor([&] { return updater.Stats().rebuilds_completed >= 6; }));
  updater.Stop();
  EXPECT_EQ(imputer.max_concurrent(), 1);
}

TEST(UpdaterConcurrencyTest, PerShardRngStreamsIgnoreScheduling) {
  // The same (seed, shard) pair must publish bit-identical snapshots
  // whether rebuilds run serialized on the caller or concurrently on the
  // pool in whatever order the scheduler picks.
  const size_t kShards = 3;
  cluster::MarOnlyDifferentiator differentiator;
  imputers::MiceImputer imputer;
  std::vector<rmap::RadioMap> maps;
  for (size_t s = 0; s < kShards; ++s) {
    maps.push_back(MakeSyntheticServingMap(8, 6, 6, 300 + s));
  }
  // A sparse delta batch per shard, fixed up front so both runs ingest
  // identical observations.
  std::vector<std::vector<rmap::Record>> deltas(kShards);
  Rng delta_rng(17);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t i = 0; i < 6; ++i) {
      rmap::Record obs = maps[s].record(delta_rng.Index(maps[s].size()));
      obs.id = rmap::Record::kUnassignedId;
      obs.time += 500.0;
      if (delta_rng.Bernoulli(0.3)) {
        obs.has_rp = false;
        obs.rp = geom::Point{};
      }
      deltas[s].push_back(std::move(obs));
    }
  }

  auto run = [&](bool pooled) {
    ShardedSnapshotStore store;
    MapUpdaterOptions opt;
    opt.seed = 4242;
    opt.min_new_observations = 6;
    opt.poll_interval_ms = 0.5;
    opt.rebuild_threads = pooled ? kShards : 1;
    MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);
    // Registration order differs between the runs as well.
    if (pooled) {
      for (size_t s = kShards; s-- > 0;) {
        updater.RegisterShard(rmap::ShardId{0, int32_t(s)}, maps[s]);
      }
    } else {
      for (size_t s = 0; s < kShards; ++s) {
        updater.RegisterShard(rmap::ShardId{0, int32_t(s)}, maps[s]);
      }
    }
    for (size_t s = 0; s < kShards; ++s) {
      for (const rmap::Record& obs : deltas[s]) {
        updater.Ingest(rmap::ShardId{0, int32_t(s)}, obs);
      }
    }
    if (pooled) {
      updater.Start();
      EXPECT_TRUE(WaitFor([&] {
        return updater.Stats().rebuilds_completed >= 2 * kShards;
      }));
      updater.Stop();
    } else {
      for (size_t s = 0; s < kShards; ++s) {
        EXPECT_TRUE(updater.RebuildNow(rmap::ShardId{0, int32_t(s)}));
      }
    }
    std::vector<la::Matrix> fingerprints;
    for (size_t s = 0; s < kShards; ++s) {
      const auto snap = store.Current(rmap::ShardId{0, int32_t(s)});
      EXPECT_EQ(snap->version, 2u);
      fingerprints.push_back(snap->fingerprints());
    }
    return fingerprints;
  };

  const auto serial = run(/*pooled=*/false);
  const auto pooled = run(/*pooled=*/true);
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t s = 0; s < serial.size(); ++s) {
    ASSERT_TRUE(serial[s].SameShape(pooled[s]));
    EXPECT_EQ(0, std::memcmp(serial[s].data().data(),
                             pooled[s].data().data(),
                             serial[s].size() * sizeof(double)))
        << "shard " << s << " snapshot depends on scheduling";
  }
}

TEST(UpdaterConcurrencyTest, IngestNeverBlocksOnInFlightRebuild) {
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  ConcurrencyProbeImputer imputer(/*sleep_ms=*/150.0);
  MapUpdaterOptions opt;
  opt.min_new_observations = 1;
  opt.poll_interval_ms = 0.5;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);

  const rmap::ShardId id{0, 0};
  const auto map = MakeSyntheticServingMap(8, 6, 6, 41);
  updater.RegisterShard(id, map);
  updater.Start();
  Rng rng(5);
  IngestBatch(&updater, id, map, 1, &rng, 100.0);
  // Wait until the background rebuild is genuinely in flight...
  ASSERT_TRUE(
      WaitFor([&] { return updater.Stats().rebuilds_started >= 2; }));
  // ...then ingest against it: must return immediately, not after the
  // imputer's 150 ms sleep.
  Timer t;
  IngestBatch(&updater, id, map, 1, &rng, 200.0);
  EXPECT_LT(t.ElapsedSeconds(), 0.1)
      << "Ingest blocked behind the in-flight rebuild";
  // The racing delta lands in a follow-up rebuild, never lost.
  ASSERT_TRUE(
      WaitFor([&] { return updater.Stats().rebuilds_completed >= 3; }));
  updater.Stop();
  EXPECT_EQ(updater.PendingObservations(id), 0u);
}

TEST(UpdaterConcurrencyTest, StopDrainsTheBatchInFlight) {
  const size_t kShards = 3;
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  ConcurrencyProbeImputer imputer(/*sleep_ms=*/80.0);
  MapUpdaterOptions opt;
  opt.min_new_observations = 2;
  opt.poll_interval_ms = 0.5;
  opt.rebuild_threads = kShards;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);
  std::vector<rmap::RadioMap> maps;
  for (size_t s = 0; s < kShards; ++s) {
    maps.push_back(MakeSyntheticServingMap(8, 6, 6, 400 + s));
    updater.RegisterShard(rmap::ShardId{2, int32_t(s)}, maps.back());
  }
  updater.Start();
  Rng rng(9);
  for (size_t s = 0; s < kShards; ++s) {
    IngestBatch(&updater, rmap::ShardId{2, int32_t(s)}, maps[s], 2, &rng,
                100.0);
  }
  // Let the trigger fire, then stop mid-batch: every started rebuild must
  // publish before Stop returns.
  ASSERT_TRUE(WaitFor(
      [&] { return updater.Stats().rebuilds_started > kShards; }));
  updater.Stop();
  const MapUpdaterStats stats = updater.Stats();
  EXPECT_EQ(stats.rebuilds_started, stats.rebuilds_completed);
  EXPECT_GT(stats.rebuilds_completed, kShards);
}

TEST(UpdaterConcurrencyTest, PhaseStatsBreakDownTheRebuild) {
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  imputers::MiceImputer imputer;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory());
  const rmap::ShardId id{3, 1};
  updater.RegisterShard(id, MakeSyntheticServingMap(10, 8, 8, 55));
  ASSERT_TRUE(updater.RebuildNow(id));

  const MapUpdaterStats stats = updater.Stats();
  ASSERT_EQ(stats.per_shard.count(id), 1u);
  const RebuildStats& shard = stats.per_shard.at(id);
  EXPECT_EQ(shard.completed, 2u);  // registration + RebuildNow
  EXPECT_EQ(shard.warm, 1u);       // only the second offered a warm start
  EXPECT_GT(shard.last_impute_seconds, 0.0);
  EXPECT_GT(shard.last_fit_seconds, 0.0);
  EXPECT_GE(shard.last_publish_seconds, 0.0);
  EXPECT_DOUBLE_EQ(shard.last_total_seconds,
                   shard.last_impute_seconds + shard.last_fit_seconds +
                       shard.last_publish_seconds);
  EXPECT_GE(shard.total_busy_seconds, shard.last_total_seconds);
  EXPECT_EQ(shard.last_queue_wait_seconds, 0.0);  // RebuildNow: no queue
}

TEST(UpdaterConcurrencyTest, WorkspaceArenaReusedAcrossConsecutiveRebuilds) {
  // Like the tape's steady-state test (threading_determinism_test): after
  // a warm-up rebuild, further rebuilds of a same-shaped shard must be
  // served entirely from the calling thread's Workspace pool. incremental
  // is off so every rebuild runs the full training loop.
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  bisim::BiSimConfig cfg;
  cfg.hidden = 8;
  cfg.attention_hidden = 8;
  cfg.epochs = 3;
  cfg.num_threads = 1;  // all tape work on this thread
  bisim::BiSimImputer imputer(cfg);
  MapUpdaterOptions opt;
  opt.incremental = false;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);

  const rmap::ShardId id{4, 0};
  updater.RegisterShard(id, MakeSyntheticServingMap(6, 5, 5, 66));
  ASSERT_TRUE(updater.RebuildNow(id));  // warm-up: pool learns every shape

  ad::Workspace& ws = ad::Workspace::Get();
  const auto warm = ws.stats();
  ASSERT_TRUE(updater.RebuildNow(id));
  ASSERT_TRUE(updater.RebuildNow(id));
  const auto steady = ws.stats();
  EXPECT_GT(steady.acquires, warm.acquires);
  EXPECT_EQ(steady.fresh_allocs, warm.fresh_allocs)
      << "steady-state rebuilds must not allocate tape matrix buffers";
}

}  // namespace
}  // namespace rmi::serving
