// Property tests for the workload substrate: walker traces are
// bit-reproducible pure functions of their seed and never leave the venue
// geometry; Poisson arrival counts land inside their distributional
// confidence bounds; the diurnal curve's closed-form integral matches
// numeric integration and normalizes the schedule to the requested total;
// fingerprint synthesis is deterministic and respects per-floor
// audibility, including Bluetooth-only floors and dimension-changing AP
// churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/missing.h"
#include "common/rng.h"
#include "workload/arrivals.h"
#include "workload/trace.h"

namespace rmi::workload {
namespace {

SoakVenueOptions TinyVenueOptions() {
  SoakVenueOptions opt;
  opt.num_buildings = 2;
  opt.floors_per_building = 3;
  opt.bluetooth_floors = 1;
  return opt;
}

TEST(WalkerPropertyTest, TracesAreBitReproduciblePerSeed) {
  const SoakVenue venue = MakeSoakVenue(TinyVenueOptions());
  WalkerOptions wopt;
  wopt.num_walkers = 64;
  const auto a = GenerateWalkers(venue, wopt);
  const auto b = GenerateWalkers(venue, wopt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a[w].device_bias_db, b[w].device_bias_db);  // exact bits
    EXPECT_EQ(a[w].start_s, b[w].start_s);
    EXPECT_EQ(a[w].end_s, b[w].end_s);
    ASSERT_EQ(a[w].keys.size(), b[w].keys.size());
    for (size_t k = 0; k < a[w].keys.size(); ++k) {
      EXPECT_EQ(a[w].keys[k].t, b[w].keys[k].t);
      EXPECT_EQ(a[w].keys[k].shard, b[w].keys[k].shard);
      EXPECT_EQ(a[w].keys[k].pos.x, b[w].keys[k].pos.x);
      EXPECT_EQ(a[w].keys[k].pos.y, b[w].keys[k].pos.y);
    }
  }

  WalkerOptions other = wopt;
  other.seed = wopt.seed + 1;
  const auto c = GenerateWalkers(venue, other);
  bool any_differ = false;
  for (size_t w = 0; w < a.size() && !any_differ; ++w) {
    any_differ = a[w].keys.size() != c[w].keys.size() ||
                 a[w].device_bias_db != c[w].device_bias_db;
  }
  EXPECT_TRUE(any_differ);
}

TEST(WalkerPropertyTest, TrajectoriesStayInsideVenueGeometry) {
  const SoakVenueOptions vopt = TinyVenueOptions();
  const SoakVenue venue = MakeSoakVenue(vopt);
  WalkerOptions wopt;
  wopt.num_walkers = 128;
  for (const WalkerTrace& walker : GenerateWalkers(venue, wopt)) {
    ASSERT_FALSE(walker.keys.empty());
    EXPECT_LE(walker.start_s, walker.end_s);
    double prev_t = walker.keys.front().t;
    for (size_t k = 0; k < walker.keys.size(); ++k) {
      const TraceKey& key = walker.keys[k];
      EXPECT_GE(key.t, prev_t);  // time-ascending
      prev_t = key.t;
      EXPECT_GE(key.pos.x, 0.0);
      EXPECT_LE(key.pos.x, double(vopt.nx - 1));
      EXPECT_GE(key.pos.y, 0.0);
      EXPECT_LE(key.pos.y, double(vopt.ny - 1));
      EXPECT_LT(venue.ShardIndex(key.shard), venue.num_shards());
      if (k > 0) {
        // Floor changes stay within the building and move one floor at a
        // time through a portal.
        const TraceKey& prev = walker.keys[k - 1];
        if (!(prev.shard == key.shard)) {
          EXPECT_EQ(prev.shard.building, key.shard.building);
          EXPECT_EQ(std::abs(prev.shard.floor - key.shard.floor), 1);
          EXPECT_EQ(prev.pos.x, key.pos.x);  // transition holds the portal
          EXPECT_EQ(prev.pos.y, key.pos.y);
        }
      }
    }
    // FloorTransitions is exactly the adjacent-key shard-change count.
    size_t transitions = 0;
    for (size_t k = 1; k < walker.keys.size(); ++k) {
      if (!(walker.keys[k - 1].shard == walker.keys[k].shard)) ++transitions;
    }
    EXPECT_EQ(walker.FloorTransitions(), transitions);
  }
}

TEST(WalkerPropertyTest, AtInterpolatesInsideTheKeyframeEnvelope) {
  const SoakVenueOptions vopt = TinyVenueOptions();
  const SoakVenue venue = MakeSoakVenue(vopt);
  WalkerOptions wopt;
  wopt.num_walkers = 16;
  for (const WalkerTrace& walker : GenerateWalkers(venue, wopt)) {
    // Clamping at the ends.
    EXPECT_EQ(walker.At(walker.start_s - 10.0).shard,
              walker.keys.front().shard);
    EXPECT_EQ(walker.At(walker.end_s + 10.0).shard, walker.keys.back().shard);
    // Dense samples stay inside the floor rectangle and on a real shard.
    const double span = walker.end_s - walker.start_s;
    for (int i = 0; i <= 50; ++i) {
      const TraceKey key = walker.At(walker.start_s + span * i / 50.0);
      EXPECT_GE(key.pos.x, 0.0);
      EXPECT_LE(key.pos.x, double(vopt.nx - 1));
      EXPECT_GE(key.pos.y, 0.0);
      EXPECT_LE(key.pos.y, double(vopt.ny - 1));
      EXPECT_LT(venue.ShardIndex(key.shard), venue.num_shards());
    }
  }
}

TEST(ArrivalPropertyTest, ScheduleIsReproducibleAndOrdered) {
  ArrivalScheduleOptions opt;
  opt.expected_total = 5000.0;
  const auto a = PoissonArrivals(opt);
  const auto b = PoissonArrivals(opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GE(a.front(), 0.0);
  EXPECT_LT(a.back(), opt.duration_s);

  ArrivalScheduleOptions other = opt;
  other.seed = opt.seed + 1;
  EXPECT_NE(PoissonArrivals(other), a);
}

TEST(ArrivalPropertyTest, RealizedCountWithinConfidenceBounds) {
  // The total is Poisson(expected_total); 5 sigma two-sided bounds give a
  // per-run false-failure probability under 1e-6.
  ArrivalScheduleOptions opt;
  opt.expected_total = 20000.0;
  const auto arrivals = PoissonArrivals(opt);
  const double sigma = std::sqrt(opt.expected_total);
  EXPECT_NEAR(double(arrivals.size()), opt.expected_total, 5.0 * sigma);
}

TEST(ArrivalPropertyTest, DiurnalIntegralMatchesNumericIntegration) {
  DiurnalCurve curve;
  curve.period_s = 137.0;
  curve.amplitude = 0.45;
  curve.phase_rad = 0.8;
  const double t0 = 3.0, t1 = 401.0;
  double riemann = 0.0;
  const size_t steps = 200000;
  const double h = (t1 - t0) / steps;
  for (size_t i = 0; i < steps; ++i) {
    riemann += curve.Level(t0 + (i + 0.5) * h) * h;
  }
  EXPECT_NEAR(curve.Integral(t0, t1), riemann, 1e-6 * riemann);
  // Over a whole period the modulation integrates out exactly.
  EXPECT_NEAR(curve.Integral(0.0, curve.period_s), curve.period_s, 1e-9);
}

TEST(ArrivalPropertyTest, ArrivalsFollowTheDiurnalShape) {
  // Quarter-by-quarter counts track the curve's own closed-form integral:
  // each quarter's count is Binomial(n, p_quarter), held to 5 sigma.
  ArrivalScheduleOptions opt;
  opt.expected_total = 40000.0;
  const auto arrivals = PoissonArrivals(opt);
  const double norm = opt.curve.Integral(0.0, opt.duration_s);
  for (int q = 0; q < 4; ++q) {
    const double lo = opt.duration_s * q / 4.0;
    const double hi = opt.duration_s * (q + 1) / 4.0;
    const double p = opt.curve.Integral(lo, hi) / norm;
    const double expected = double(arrivals.size()) * p;
    const double sigma = std::sqrt(expected * (1.0 - p));
    const auto count = std::count_if(
        arrivals.begin(), arrivals.end(),
        [&](double t) { return t >= lo && t < hi; });
    EXPECT_NEAR(double(count), expected, 5.0 * sigma)
        << "quarter " << q << " off its binomial bounds";
  }
  // The default phase starts the soak in the quiet hours: the first
  // quarter must be the lightest.
  const auto quarter_count = [&](int q) {
    const double lo = opt.duration_s * q / 4.0;
    const double hi = opt.duration_s * (q + 1) / 4.0;
    return std::count_if(arrivals.begin(), arrivals.end(),
                         [&](double t) { return t >= lo && t < hi; });
  };
  EXPECT_LT(quarter_count(0), quarter_count(1));
  EXPECT_LT(quarter_count(0), quarter_count(2));
}

TEST(FingerprintPropertyTest, SynthesisIsDeterministicAndAudible) {
  const SoakVenue venue = MakeSoakVenue(TinyVenueOptions());
  WalkerOptions wopt;
  wopt.num_walkers = 8;
  const auto walkers = GenerateWalkers(venue, wopt);
  FingerprintOptions fopt;
  for (const WalkerTrace& walker : walkers) {
    const TraceKey truth = walker.At((walker.start_s + walker.end_s) / 2.0);
    Rng rng_a(42), rng_b(42);
    const auto fp_a = SynthesizeFingerprint(venue, truth,
                                            walker.device_bias_db, fopt,
                                            rng_a);
    const auto fp_b = SynthesizeFingerprint(venue, truth,
                                            walker.device_bias_db, fopt,
                                            rng_b);
    ASSERT_EQ(fp_a.size(), fp_b.size());
    for (size_t ap = 0; ap < fp_a.size(); ++ap) {
      // NaN marks an unheard AP; NaN != NaN, so compare null-ness first.
      EXPECT_EQ(IsNull(fp_a[ap]), IsNull(fp_b[ap]));
      if (!IsNull(fp_a[ap])) EXPECT_EQ(fp_a[ap], fp_b[ap]);
    }
    ASSERT_EQ(fp_a.size(), venue.num_aps());
    const auto& audible =
        venue.shards[venue.ShardIndex(truth.shard)].audible_aps;
    size_t observed = 0;
    for (size_t ap = 0; ap < fp_a.size(); ++ap) {
      if (IsNull(fp_a[ap])) continue;
      ++observed;
      // Only APs audible on the true floor may appear in a scan.
      EXPECT_TRUE(std::find(audible.begin(), audible.end(), ap) !=
                  audible.end());
      EXPECT_LE(fp_a[ap], 0.0);
      EXPECT_GE(fp_a[ap], -99.0);
    }
    EXPECT_GE(observed, 1u);  // a scan is never all-null
  }
}

TEST(FingerprintPropertyTest, BluetoothFloorScansAreSparse) {
  const SoakVenueOptions vopt = TinyVenueOptions();
  const SoakVenue venue = MakeSoakVenue(vopt);
  // The last shard is the Bluetooth-only floor.
  const size_t bt = venue.num_shards() - 1;
  ASSERT_TRUE(venue.bluetooth[bt]);
  TraceKey truth;
  truth.shard = venue.shards[bt].id;
  truth.pos = {double(vopt.nx) / 2.0, double(vopt.ny) / 2.0};
  Rng rng(7);
  FingerprintOptions fopt;
  fopt.drop_rate = 0.0;  // count the full audible set
  const auto fp = SynthesizeFingerprint(venue, truth, 0.0, fopt, rng);
  size_t observed = 0;
  for (double v : fp) observed += IsNull(v) ? 0 : 1;
  EXPECT_GE(observed, 1u);
  EXPECT_LE(observed, vopt.beacons_per_bluetooth_floor);
}

TEST(ChurnPropertyTest, ApAddAndRemoveRoundTripTheDimension) {
  const SoakVenue venue = MakeSoakVenue(TinyVenueOptions());
  const size_t d = venue.num_aps();
  const SoakVenue widened = AddGlobalAps(venue, 3, 17);
  EXPECT_EQ(widened.num_aps(), d + 3);
  for (const serving::VenueShard& shard : widened.shards) {
    EXPECT_EQ(shard.map.num_aps(), d + 3);
    for (size_t r = 0; r < shard.map.size(); ++r) {
      EXPECT_EQ(shard.map.record(r).rssi.size(), d + 3);
    }
  }
  const SoakVenue narrowed = RemoveLastGlobalAps(widened, 3);
  EXPECT_EQ(narrowed.num_aps(), d);
  for (size_t s = 0; s < venue.num_shards(); ++s) {
    EXPECT_EQ(narrowed.shards[s].map.num_aps(), d);
    EXPECT_EQ(narrowed.shards[s].audible_aps, venue.shards[s].audible_aps);
  }
}

TEST(ChurnPropertyTest, ResurveyObservationsMatchShardShape) {
  const SoakVenue venue = MakeSoakVenue(TinyVenueOptions());
  const auto observations =
      MakeResurveyObservations(venue, 2, 40, 1.5, 100.0, 9);
  ASSERT_EQ(observations.size(), 40u);
  for (const rmap::Record& record : observations) {
    EXPECT_EQ(record.rssi.size(), venue.num_aps());
    EXPECT_GE(record.time, 100.0);
  }
  // Deterministic per seed.
  EXPECT_EQ(MakeResurveyObservations(venue, 2, 40, 1.5, 100.0, 9).size(),
            observations.size());
}

}  // namespace
}  // namespace rmi::workload
