#include <gtest/gtest.h>

#include <cmath>

#include "positioning/estimators.h"

namespace rmi::positioning {
namespace {

/// Complete 1-AP-per-corner map: fingerprints are smooth functions of the
/// position, so all estimators should localize well.
rmap::RadioMap GridMap(size_t side = 8) {
  rmap::RadioMap map(4);
  const geom::Point corners[4] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  for (size_t i = 0; i < side; ++i) {
    for (size_t j = 0; j < side; ++j) {
      rmap::Record r;
      const geom::Point p{10.0 * i / (side - 1), 10.0 * j / (side - 1)};
      r.rssi.resize(4);
      for (size_t a = 0; a < 4; ++a) {
        r.rssi[a] = -30.0 - 3.0 * geom::Distance(p, corners[a]);
      }
      r.has_rp = true;
      r.rp = p;
      r.time = static_cast<double>(i * side + j);
      map.Add(r);
    }
  }
  return map;
}

std::vector<double> FingerprintAt(const geom::Point& p) {
  const geom::Point corners[4] = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  std::vector<double> f(4);
  for (size_t a = 0; a < 4; ++a) {
    f[a] = -30.0 - 3.0 * geom::Distance(p, corners[a]);
  }
  return f;
}

TEST(KnnTest, ExactTrainingPointRecovered) {
  auto map = GridMap();
  KnnEstimator knn(1);
  Rng rng(1);
  knn.Fit(map, rng);
  const geom::Point q{10.0 / 7.0 * 3, 10.0 / 7.0 * 4};
  const geom::Point est = knn.Estimate(FingerprintAt(q));
  EXPECT_NEAR(est.x, q.x, 1e-9);
  EXPECT_NEAR(est.y, q.y, 1e-9);
}

TEST(KnnTest, MeanOfKNeighbors) {
  // Two training points; query equidistant: k=2 mean is the midpoint.
  rmap::RadioMap map(1);
  auto add = [&](double rssi, double x) {
    rmap::Record r;
    r.rssi = {rssi};
    r.has_rp = true;
    r.rp = {x, 0};
    r.time = x;
    map.Add(r);
  };
  add(-40, 0.0);
  add(-60, 10.0);
  KnnEstimator knn(2);
  Rng rng(2);
  knn.Fit(map, rng);
  EXPECT_NEAR(knn.Estimate({-50}).x, 5.0, 1e-9);
}

TEST(WknnTest, WeightsCloserNeighborsMore) {
  rmap::RadioMap map(1);
  auto add = [&](double rssi, double x) {
    rmap::Record r;
    r.rssi = {rssi};
    r.has_rp = true;
    r.rp = {x, 0};
    r.time = x;
    map.Add(r);
  };
  add(-40, 0.0);
  add(-60, 10.0);
  KnnEstimator wknn(2, /*weighted=*/true);
  Rng rng(3);
  wknn.Fit(map, rng);
  // Query much closer to the first fingerprint.
  const geom::Point est = wknn.Estimate({-42});
  EXPECT_LT(est.x, 2.0);
}

TEST(WknnTest, InterpolatesOnGrid) {
  auto map = GridMap();
  KnnEstimator wknn(3, true);
  Rng rng(4);
  wknn.Fit(map, rng);
  const geom::Point q{4.3, 6.1};
  const geom::Point est = wknn.Estimate(FingerprintAt(q));
  EXPECT_NEAR(geom::Distance(est, q), 0.0, 1.5);
}

TEST(KnnTest, IgnoresUnlabeledRecords) {
  rmap::RadioMap map(1);
  rmap::Record labeled;
  labeled.rssi = {-40.0};
  labeled.has_rp = true;
  labeled.rp = {3, 3};
  map.Add(labeled);
  rmap::Record unlabeled;
  unlabeled.rssi = {-40.0};
  unlabeled.has_rp = false;
  map.Add(unlabeled);
  KnnEstimator knn(5);
  Rng rng(5);
  knn.Fit(map, rng);
  const geom::Point est = knn.Estimate({-40.0});
  EXPECT_DOUBLE_EQ(est.x, 3.0);
}

TEST(RandomForestTest, LearnsGridRegression) {
  auto map = GridMap(10);
  RandomForestEstimator rf;
  Rng rng(6);
  rf.Fit(map, rng);
  double err = 0;
  int count = 0;
  for (double x : {2.0, 5.0, 8.0}) {
    for (double y : {2.0, 5.0, 8.0}) {
      const geom::Point q{x, y};
      err += geom::Distance(rf.Estimate(FingerprintAt(q)), q);
      ++count;
    }
  }
  EXPECT_LT(err / count, 2.5);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  auto map = GridMap();
  RandomForestEstimator a, b;
  Rng ra(7), rb(7);
  a.Fit(map, ra);
  b.Fit(map, rb);
  const auto f = FingerprintAt({3, 3});
  EXPECT_DOUBLE_EQ(a.Estimate(f).x, b.Estimate(f).x);
  EXPECT_DOUBLE_EQ(a.Estimate(f).y, b.Estimate(f).y);
}

TEST(RandomForestTest, ConstantLabelsYieldConstantPrediction) {
  rmap::RadioMap map(2);
  Rng gen(8);
  for (int i = 0; i < 20; ++i) {
    rmap::Record r;
    r.rssi = {gen.Uniform(-90, -30), gen.Uniform(-90, -30)};
    r.has_rp = true;
    r.rp = {4.0, 7.0};
    r.time = i;
    map.Add(r);
  }
  RandomForestEstimator rf;
  Rng rng(9);
  rf.Fit(map, rng);
  const geom::Point est = rf.Estimate({-50, -50});
  EXPECT_DOUBLE_EQ(est.x, 4.0);
  EXPECT_DOUBLE_EQ(est.y, 7.0);
}

TEST(EstimatorNamesTest, PaperLabels) {
  EXPECT_EQ(KnnEstimator(3, false).name(), "KNN");
  EXPECT_EQ(KnnEstimator(3, true).name(), "WKNN");
  EXPECT_EQ(RandomForestEstimator().name(), "RF");
}

class KnnKSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KnnKSweepTest, ReasonableAccuracyAcrossK) {
  auto map = GridMap(8);
  KnnEstimator knn(GetParam(), true);
  Rng rng(10);
  knn.Fit(map, rng);
  const geom::Point q{5.1, 5.2};
  EXPECT_LT(geom::Distance(knn.Estimate(FingerprintAt(q)), q), 2.5);
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnKSweepTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace rmi::positioning
