// The serving subsystem:
//  * EstimateBatch (Gemm-batched KNN/WKNN, scalar-loop RF) equals
//    per-record Estimate, for complete and partial (kNull) fingerprints;
//  * KnnEstimator::Estimate tolerates kNull entries and stays bit-identical
//    to the historical all-dimensions loop on complete fingerprints;
//  * SpatialIndex pruning returns exactly the brute-force KNN set;
//  * snapshot hot-swap under concurrent readers never yields a torn or
//    empty snapshot (same style as threading_determinism_test: real
//    threads, deterministic inputs);
//  * LocalizationServer coalesces and answers exactly like the scalar path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/missing.h"
#include "common/rng.h"
#include "positioning/estimators.h"
#include "serving/batch_localizer.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/spatial_index.h"
#include "serving/synthetic.h"

namespace rmi::serving {
namespace {

rmap::RadioMap MakeServingMap(size_t nx, size_t ny, size_t num_aps,
                              uint64_t seed = 11) {
  return MakeSyntheticServingMap(nx, ny, num_aps, seed);
}

la::Matrix MakeQueries(const rmap::RadioMap& map, size_t count,
                       double null_fraction, uint64_t seed = 21) {
  return MakeSyntheticQueries(map, count, null_fraction, seed);
}

std::vector<double> RowOf(const la::Matrix& m, size_t i) {
  return MatrixRow(m, i);
}

TEST(EstimateBatchTest, MatchesScalarEstimateOnCompleteQueries) {
  const auto map = MakeServingMap(16, 12, 14);
  Rng rng(3);
  std::vector<std::unique_ptr<positioning::LocationEstimator>> estimators;
  estimators.push_back(std::make_unique<positioning::KnnEstimator>(3, false));
  estimators.push_back(std::make_unique<positioning::KnnEstimator>(4, true));
  estimators.push_back(std::make_unique<positioning::RandomForestEstimator>());
  const la::Matrix queries = MakeQueries(map, 40, /*null_fraction=*/0.0);
  for (auto& estimator : estimators) {
    estimator->Fit(map, rng);
    const std::vector<geom::Point> batch = estimator->EstimateBatch(queries);
    ASSERT_EQ(batch.size(), queries.rows());
    for (size_t i = 0; i < queries.rows(); ++i) {
      const geom::Point scalar = estimator->Estimate(RowOf(queries, i));
      EXPECT_NEAR(batch[i].x, scalar.x, 1e-12)
          << estimator->name() << " row " << i;
      EXPECT_NEAR(batch[i].y, scalar.y, 1e-12)
          << estimator->name() << " row " << i;
    }
  }
}

TEST(EstimateBatchTest, MatchesScalarEstimateOnPartialQueries) {
  const auto map = MakeServingMap(14, 10, 12);
  Rng rng(5);
  positioning::KnnEstimator knn(3, false);
  positioning::KnnEstimator wknn(5, true);
  knn.Fit(map, rng);
  wknn.Fit(map, rng);
  const la::Matrix queries = MakeQueries(map, 48, /*null_fraction=*/0.35);
  for (const positioning::KnnEstimator* e : {&knn, &wknn}) {
    const std::vector<geom::Point> batch = e->EstimateBatch(queries);
    for (size_t i = 0; i < queries.rows(); ++i) {
      const geom::Point scalar = e->Estimate(RowOf(queries, i));
      EXPECT_NEAR(batch[i].x, scalar.x, 1e-12) << e->name() << " row " << i;
      EXPECT_NEAR(batch[i].y, scalar.y, 1e-12) << e->name() << " row " << i;
    }
  }
}

TEST(KnnEstimatorTest, CompleteFingerprintBitIdenticalToReferenceLoop) {
  const auto map = MakeServingMap(10, 8, 9);
  Rng rng(7);
  positioning::KnnEstimator wknn(3, true);
  wknn.Fit(map, rng);
  const la::Matrix queries = MakeQueries(map, 10, 0.0);
  for (size_t i = 0; i < queries.rows(); ++i) {
    const std::vector<double> q = RowOf(queries, i);
    // The pre-PR algorithm, verbatim: all-dimension squared distances,
    // partial_sort, inverse-distance weights.
    std::vector<std::pair<double, size_t>> dist;
    for (size_t r = 0; r < map.size(); ++r) {
      double s = 0.0;
      for (size_t j = 0; j < q.size(); ++j) {
        const double d = q[j] - map.record(r).rssi[j];
        s += d * d;
      }
      dist.emplace_back(s, r);
    }
    std::partial_sort(dist.begin(), dist.begin() + 3, dist.end());
    geom::Point acc;
    double wsum = 0.0;
    for (size_t t = 0; t < 3; ++t) {
      const double w = 1.0 / (std::sqrt(dist[t].first) + 1e-6);
      acc = acc + map.record(dist[t].second).rp * w;
      wsum += w;
    }
    const geom::Point expected = acc * (1.0 / wsum);
    const geom::Point got = wknn.Estimate(q);
    EXPECT_DOUBLE_EQ(got.x, expected.x);
    EXPECT_DOUBLE_EQ(got.y, expected.y);
  }
}

TEST(KnnEstimatorTest, ToleratesNullEntriesInOnlineFingerprint) {
  const auto map = MakeServingMap(10, 8, 9);
  Rng rng(7);
  positioning::KnnEstimator knn(3, false);
  knn.Fit(map, rng);
  // A fingerprint that only heard 3 of 9 APs, taken from a known row.
  const rmap::Record& truth = map.record(37);
  std::vector<double> partial(map.num_aps(), kNull);
  partial[0] = truth.rssi[0];
  partial[4] = truth.rssi[4];
  partial[7] = truth.rssi[7];
  const geom::Point p = knn.Estimate(partial);
  EXPECT_TRUE(std::isfinite(p.x));
  EXPECT_TRUE(std::isfinite(p.y));
  // Observed-dims-only distance makes the true row the nearest neighbor
  // (its masked distance to itself is 0), so the estimate lands near it.
  EXPECT_NEAR(p.x, truth.rp.x, 3.0);
  EXPECT_NEAR(p.y, truth.rp.y, 3.0);
}

TEST(SpatialIndexTest, SearchEqualsBruteForceExactly) {
  const auto map = MakeServingMap(20, 15, 13);
  const size_t n = map.size();
  la::Matrix refs(n, map.num_aps());
  std::vector<geom::Point> positions;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      refs(i, j) = map.record(i).rssi[j];
    }
    positions.push_back(map.record(i).rp);
  }
  SpatialIndex index;
  index.Build(refs, positions, /*cell_size_m=*/4.0);
  EXPECT_GT(index.num_cells(), 4u);

  const la::Matrix complete = MakeQueries(map, 30, 0.0, 31);
  const la::Matrix partial = MakeQueries(map, 30, 0.4, 32);
  for (const la::Matrix* queries : {&complete, &partial}) {
    for (size_t i = 0; i < queries->rows(); ++i) {
      const std::vector<double> q = RowOf(*queries, i);
      for (size_t k : {1u, 3u, 7u}) {
        const auto got = index.Search(refs, q, k);
        const auto want = BruteForceKnn(refs, q, k);
        ASSERT_EQ(got.size(), want.size());
        for (size_t t = 0; t < want.size(); ++t) {
          EXPECT_EQ(got[t].second, want[t].second) << "k=" << k << " t=" << t;
          EXPECT_EQ(got[t].first, want[t].first) << "k=" << k << " t=" << t;
        }
      }
    }
  }
  // The bound must actually prune on a clustered map.
  const std::vector<double> q = RowOf(complete, 0);
  index.Search(refs, q, 3);
  EXPECT_LT(SpatialIndex::last_scored(), n);
}

TEST(SpatialIndexTest, BoundaryContractsMatchBruteForce) {
  const auto map = MakeServingMap(6, 5, 8);
  const size_t n = map.size();
  la::Matrix refs(n, map.num_aps());
  std::vector<geom::Point> positions;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      refs(i, j) = map.record(i).rssi[j];
    }
    positions.push_back(map.record(i).rp);
  }
  SpatialIndex index;
  index.Build(refs, positions, 3.0);
  const std::vector<double> q = RowOf(MakeQueries(map, 1, 0.0, 61), 0);

  // k == 0: nothing to return (and no crash).
  EXPECT_TRUE(index.Search(refs, q, 0).empty());
  EXPECT_TRUE(BruteForceKnn(refs, q, 0).empty());

  // k == n and k > n: every row, ascending by (distance, index).
  for (size_t k : {n, n + 7}) {
    const auto got = index.Search(refs, q, k);
    const auto want = BruteForceKnn(refs, q, k);
    ASSERT_EQ(got.size(), n);
    ASSERT_EQ(want.size(), n);
    for (size_t t = 0; t < n; ++t) {
      EXPECT_EQ(got[t].first, want[t].first) << "k=" << k << " t=" << t;
      EXPECT_EQ(got[t].second, want[t].second) << "k=" << k << " t=" << t;
    }
  }
}

TEST(SpatialIndexTest, ExactTiesBreakByIndexLikeBruteForce) {
  // Duplicated fingerprint rows force exact distance ties; the pruned
  // search must return the same (distance, index) order as brute force.
  const size_t d = 5;
  la::Matrix refs(6, d);
  std::vector<geom::Point> positions;
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < d; ++j) {
      refs(i, j) = -40.0 - 10.0 * double(i % 2) - 2.0 * double(j);
    }
    positions.emplace_back(double(i), double(i) * 0.5);
  }
  SpatialIndex index;
  index.Build(refs, positions, 1.0);
  std::vector<double> q(d, -45.0);
  for (size_t k : {1u, 3u, 6u}) {
    const auto got = index.Search(refs, q, k);
    const auto want = BruteForceKnn(refs, q, k);
    ASSERT_EQ(got.size(), want.size()) << "k=" << k;
    for (size_t t = 0; t < want.size(); ++t) {
      EXPECT_EQ(got[t].first, want[t].first) << "k=" << k << " t=" << t;
      EXPECT_EQ(got[t].second, want[t].second) << "k=" << k << " t=" << t;
    }
  }
}

TEST(SpatialIndexTest, EmptyIndexReturnsNothing) {
  SpatialIndex index;
  la::Matrix refs(0, 4);
  index.Build(refs, {}, 2.0);
  EXPECT_TRUE(index.empty());
  const std::vector<double> q(4, -50.0);
  EXPECT_TRUE(index.Search(refs, q, 3).empty());
}

TEST(EstimateBatchTest, AllNullRowAbortsWithDiagnostic) {
  // Contract: an all-null row has no distance signal; EstimateBatch
  // asserts rather than silently decaying. The serving layer filters such
  // rows per request *before* batching (RejectsMalformedRequests covers
  // that path), so an all-null row reaching the estimator is a bug.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto map = MakeServingMap(6, 5, 7);
  Rng rng(13);
  positioning::KnnEstimator knn(3, false);
  knn.Fit(map, rng);
  la::Matrix queries = MakeQueries(map, 2, 0.0, 71);
  for (size_t j = 0; j < queries.cols(); ++j) queries(1, j) = kNull;
  EXPECT_DEATH(knn.EstimateBatch(queries), "RMI_CHECK");
}

TEST(SnapshotTest, BuildFitsEstimatorAndStampsChecksum) {
  const auto map = MakeServingMap(12, 9, 10);
  Rng rng(9);
  SnapshotOptions opt;
  opt.version = 42;
  auto snap = BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(3, true), rng, opt);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 42u);
  EXPECT_TRUE(snap->Consistent());
  EXPECT_EQ(snap->num_refs(), map.size());
  EXPECT_EQ(snap->num_aps(), map.num_aps());
  EXPECT_FALSE(snap->index.empty());
}

TEST(SnapshotStoreTest, HotSwapUnderConcurrentReadersIsNeverTornOrEmpty) {
  const auto map_a = MakeServingMap(12, 9, 10, 1);
  const auto map_b = MakeServingMap(12, 9, 10, 2);
  Rng rng(13);
  // Prebuilt generations to cycle through while readers hammer the store.
  std::vector<std::shared_ptr<const MapSnapshot>> generations;
  for (uint64_t v = 0; v < 4; ++v) {
    SnapshotOptions opt;
    opt.version = v;
    generations.push_back(
        BuildSnapshot(v % 2 == 0 ? map_a : map_b,
                      std::make_unique<positioning::KnnEstimator>(3, true),
                      rng, opt));
  }
  MapSnapshotStore store(generations[0]);
  BatchLocalizer localizer(&store);
  const la::Matrix queries = MakeQueries(map_a, 8, 0.25, 41);

  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      size_t i = size_t(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = store.Current();
        if (snap == nullptr || !snap->Consistent()) {
          failed.store(true);
          return;
        }
        const geom::Point p = localizer.Localize(RowOf(queries, i % 8));
        if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
          failed.store(true);
          return;
        }
        ++i;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer: publish every generation many times while readers run.
  for (int round = 0; round < 200; ++round) {
    store.Publish(generations[size_t(round) % generations.size()]);
  }
  while (reads.load() < 2000 && !failed.load()) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load()) << "a reader saw a torn or empty snapshot";
  EXPECT_GE(store.publish_count(), 201u);
  EXPECT_GE(reads.load(), 2000u);
}

TEST(BatchLocalizerTest, SingleQueryPrunedPathMatchesEstimator) {
  const auto map = MakeServingMap(16, 12, 11);
  Rng rng(17);
  auto snap = BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(4, true), rng);
  MapSnapshotStore store(snap);
  BatchLocalizer localizer(&store);
  const la::Matrix queries = MakeQueries(map, 25, 0.3, 55);
  for (size_t i = 0; i < queries.rows(); ++i) {
    const std::vector<double> q = RowOf(queries, i);
    const geom::Point direct = snap->estimator->Estimate(q);
    const geom::Point pruned = localizer.Localize(q);
    EXPECT_DOUBLE_EQ(pruned.x, direct.x) << "row " << i;
    EXPECT_DOUBLE_EQ(pruned.y, direct.y) << "row " << i;
  }
}

TEST(LocalizationServerTest, CoalescesBatchesAndMatchesScalarAnswers) {
  const auto map = MakeServingMap(16, 12, 11);
  Rng rng(19);
  auto snap = BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(3, true), rng);
  MapSnapshotStore store(snap);
  ServerOptions opt;
  opt.max_batch = 16;
  opt.max_wait_us = 500.0;
  opt.num_workers = 2;
  LocalizationServer server(&store, opt);

  const la::Matrix queries = MakeQueries(map, 96, 0.2, 77);
  std::vector<std::future<geom::Point>> futures;
  futures.reserve(queries.rows());
  for (size_t i = 0; i < queries.rows(); ++i) {
    futures.push_back(server.Submit(RowOf(queries, i)));
  }
  for (size_t i = 0; i < queries.rows(); ++i) {
    const geom::Point got = futures[size_t(i)].get();
    const geom::Point want = snap->estimator->Estimate(RowOf(queries, i));
    EXPECT_NEAR(got.x, want.x, 1e-12) << "row " << i;
    EXPECT_NEAR(got.y, want.y, 1e-12) << "row " << i;
  }
  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, queries.rows());
  EXPECT_GE(stats.batches, queries.rows() / opt.max_batch);
  EXPECT_GT(stats.mean_batch_size, 1.0);
  EXPECT_GT(stats.p50_latency_us, 0.0);
  EXPECT_GE(stats.p99_latency_us, stats.p95_latency_us);
  EXPECT_GE(stats.p95_latency_us, stats.p50_latency_us);
}

TEST(LocalizationServerTest, SubmitAfterStopRejectsWithoutCrashing) {
  const auto map = MakeServingMap(8, 6, 6);
  Rng rng(29);
  MapSnapshotStore store(BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(3, false), rng));
  LocalizationServer server(&store);
  const std::vector<double> q = RowOf(MakeQueries(map, 1, 0.0), 0);
  EXPECT_NO_THROW(server.Localize(q));
  server.Stop();
  std::future<geom::Point> rejected = server.Submit(q);
  EXPECT_THROW(rejected.get(), std::runtime_error);
}

TEST(LocalizationServerTest, RejectsMalformedRequestsWithoutCrashing) {
  const auto map = MakeServingMap(8, 6, 6);
  Rng rng(31);
  MapSnapshotStore store(BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(3, true), rng));
  LocalizationServer server(&store);
  // Wrong width (e.g. sized for a pre-hot-swap snapshot).
  std::future<geom::Point> wrong_width =
      server.Submit(std::vector<double>(4, -50.0));
  // All-null scan: no distance signal.
  std::future<geom::Point> all_null =
      server.Submit(std::vector<double>(map.num_aps(), kNull));
  // A valid request in the same stream is still served.
  const std::vector<double> q = RowOf(MakeQueries(map, 1, 0.0), 0);
  const geom::Point p = server.Localize(q);
  EXPECT_TRUE(std::isfinite(p.x));
  EXPECT_THROW(wrong_width.get(), std::runtime_error);
  EXPECT_THROW(all_null.get(), std::runtime_error);
  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_GE(stats.completed, 1u);

  // An estimator without partial-fingerprint support (RF: NaN would
  // silently mis-traverse its trees) must reject partial scans too.
  MapSnapshotStore rf_store(BuildSnapshot(
      map, std::make_unique<positioning::RandomForestEstimator>(), rng));
  LocalizationServer rf_server(&rf_store);
  std::vector<double> partial = q;
  partial[0] = kNull;
  std::future<geom::Point> rf_partial = rf_server.Submit(partial);
  EXPECT_THROW(rf_partial.get(), std::runtime_error);
  EXPECT_NO_THROW(rf_server.Localize(q));
  rf_server.Stop();
}

TEST(LocalizationServerTest, TinyRingBackpressuresInsteadOfDropping) {
  // A ring far smaller than the offered load: Submits must backpressure
  // (yield) until dispatchers drain cells, and every request must still be
  // answered — bounded memory, no drops, no deadlock.
  const auto map = MakeServingMap(10, 8, 8);
  Rng rng(37);
  auto snap = BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(3, true), rng);
  MapSnapshotStore store(snap);
  ServerOptions opt;
  opt.max_batch = 4;
  opt.max_wait_us = 50.0;
  opt.num_workers = 2;
  opt.queue_capacity = 8;
  LocalizationServer server(&store, opt);

  const la::Matrix queries = MakeQueries(map, 16, 0.1, 83);
  const size_t kClients = 4, kPerClient = 64;
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        const geom::Point p =
            server.Localize(RowOf(queries, (c * kPerClient + i) % 16));
        if (std::isfinite(p.x) && std::isfinite(p.y)) {
          answered.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(server.Stats().completed, kClients * kPerClient);
}

TEST(LocalizationServerTest, ServesDuringHotSwap) {
  const auto map = MakeServingMap(12, 9, 10);
  Rng rng(23);
  std::vector<std::shared_ptr<const MapSnapshot>> generations;
  for (uint64_t v = 0; v < 3; ++v) {
    SnapshotOptions opt;
    opt.version = v;
    generations.push_back(BuildSnapshot(
        map, std::make_unique<positioning::KnnEstimator>(3, v % 2 == 1), rng,
        opt));
  }
  MapSnapshotStore store(generations[0]);
  ServerOptions opt;
  opt.max_batch = 8;
  opt.num_workers = 2;
  LocalizationServer server(&store, opt);

  const la::Matrix queries = MakeQueries(map, 8, 0.2, 91);
  std::vector<std::future<geom::Point>> futures;
  for (int round = 0; round < 60; ++round) {
    store.Publish(generations[size_t(round) % generations.size()]);
    for (size_t i = 0; i < queries.rows(); ++i) {
      futures.push_back(server.Submit(RowOf(queries, i)));
    }
  }
  for (auto& f : futures) {
    const geom::Point p = f.get();
    EXPECT_TRUE(std::isfinite(p.x));
    EXPECT_TRUE(std::isfinite(p.y));
  }
  server.Stop();
  EXPECT_EQ(server.Stats().completed, futures.size());
}

}  // namespace
}  // namespace rmi::serving
