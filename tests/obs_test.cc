// The observability layer:
//  * Counter/Gauge/Histogram stay *exact* under multi-threaded hammering —
//    sharding trades contention, never correctness;
//  * a scrape (Prometheus text / JSON) may race writers freely and the
//    post-join totals are exact;
//  * Histogram buckets honor their <= 25% width contract, percentiles
//    interpolate inside the right bucket, and Summary() merges per-shard
//    moments into single-stream RunningStats;
//  * the trace sampler is deterministic 1-in-N with a bounded span buffer
//    and completed-trace ring;
//  * end-to-end: a live server + updater + router populate the registry,
//    and one scrape shows the per-stage latency histograms, queue depth,
//    batch size, pool steal counters, epoch retire/reclaim counts, and
//    per-shard rebuild stage gauges the dashboards key on.
// This suite runs under the CI TSan job with serving/updater tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "clustering/differentiation.h"
#include "common/rng.h"
#include "common/stats.h"
#include "imputers/traditional.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/server.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/synthetic.h"

namespace rmi::obs {
namespace {

/// Re-enables the layer on scope exit — tests that flip the switch must
/// not leak a disabled registry into later tests.
struct EnabledGuard {
  ~EnabledGuard() { SetEnabled(true); }
};

/// Value of sample line `name <value>` in a Prometheus text dump, anchored
/// at line start (a bare find would match the series name inside its own
/// `# HELP` line). -1 when the series is absent.
double ScrapeValue(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::stod(text.substr(pos + needle.size()));
}

TEST(CounterTest, ExactUnderConcurrentHammer) {
  Counter& counter = GetCounter("test_hammer_counter", "test");
  const uint64_t before = counter.Total();
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
      counter.Add(42);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Total() - before, kThreads * (kPerThread + 42));
}

TEST(GaugeTest, ShardedDeltasSumExactly) {
  Gauge& gauge = GetGauge("test_depth_gauge", "test");
  const double before = gauge.Value();
  constexpr size_t kThreads = 6;
  constexpr int kOps = 50000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      // Producers net +kOps, consumers net -kOps; pairs cancel.
      for (int i = 0; i < kOps; ++i) {
        if (t % 2 == 0) {
          gauge.Add(1.0);
        } else {
          gauge.Sub(1.0);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), before);  // 3 producers vs 3 consumers

  Gauge& single = GetGauge("test_set_gauge", "test");
  single.Set(3.25);
  EXPECT_DOUBLE_EQ(single.Value(), 3.25);
  single.Set(1.5);  // Set replaces, never accumulates
  EXPECT_DOUBLE_EQ(single.Value(), 1.5);
}

TEST(HistogramTest, BucketIndexRoundTripsAndBoundsWidth) {
  // Values 0..3 are exact buckets.
  for (uint64_t v = 0; v < 4; ++v) {
    uint64_t lo = 0, hi = 0;
    const size_t b = Histogram::BucketIndex(v);
    Histogram::BucketBounds(b, &lo, &hi);
    EXPECT_EQ(lo, v);
    EXPECT_EQ(hi, v);
  }
  // Every probed value lands inside its bucket's bounds and the bucket is
  // never wider than 25% of its lower bound.
  for (uint64_t v : {4ull, 5ull, 17ull, 100ull, 1000ull, 123456ull,
                     987654321ull, 1ull << 40, ~0ull}) {
    const size_t b = Histogram::BucketIndex(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << v;
    uint64_t lo = 0, hi = 0;
    Histogram::BucketBounds(b, &lo, &hi);
    EXPECT_GE(v, lo) << v;
    EXPECT_LE(v, hi) << v;
    EXPECT_LE(static_cast<double>(hi - lo), 0.25 * static_cast<double>(lo))
        << v;
  }
  // Bucket indices are monotone in the value.
  size_t prev = 0;
  for (uint64_t v = 0; v < 4096; ++v) {
    const size_t b = Histogram::BucketIndex(v);
    EXPECT_GE(b, prev) << v;
    prev = b;
  }
}

TEST(HistogramTest, ExactMomentsUnderConcurrentHammer) {
  Histogram& hist = GetHistogram("test_hammer_hist", "test");
  const uint64_t count_before = hist.Count();
  const double sum_before = hist.Sum();
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 20000;
  // Integer-valued observations: double sums over them are exact.
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>(10 + (i + int(t)) % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.Count() - count_before, kThreads * size_t(kPerThread));
  // Each thread observes a full cycle of 10..109 repeated: per 100 values
  // the sum is (10 + 109) * 100 / 2.
  const double expected_sum =
      kThreads * (kPerThread / 100.0) * (10.0 + 109.0) * 100.0 / 2.0;
  EXPECT_DOUBLE_EQ(hist.Sum() - sum_before, expected_sum);
}

TEST(HistogramTest, SummaryMergesShardsIntoRunningStats) {
  Histogram hist;  // private instance: exact expected moments
  RunningStats reference;
  Rng rng(9);
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> per_thread(4);
  for (auto& values : per_thread) {
    for (int i = 0; i < 5000; ++i) {
      values.push_back(std::floor(rng.Uniform(0.0, 10000.0)));
    }
    for (double v : values) reference.Add(v);
  }
  for (auto& values : per_thread) {
    threads.emplace_back([&hist, &values] {
      for (double v : values) hist.ObserveUnconditional(v);
    });
  }
  for (auto& t : threads) t.join();
  const RunningStats summary = hist.Summary();
  EXPECT_EQ(summary.count(), reference.count());
  EXPECT_NEAR(summary.mean(), reference.mean(), 1e-9 * reference.mean());
  EXPECT_NEAR(summary.stddev(), reference.stddev(),
              1e-6 * reference.stddev());
  EXPECT_DOUBLE_EQ(summary.min(), reference.min());
  EXPECT_DOUBLE_EQ(summary.max(), reference.max());
}

TEST(HistogramTest, PercentileLandsInTheRightBucket) {
  Histogram hist;
  for (int i = 0; i < 1000; ++i) hist.ObserveUnconditional(100.0);
  // Value 100 lives in bucket [96, 111]: any interpolated percentile must
  // stay inside, and the quantization error is within the 25% contract.
  for (double p : {1.0, 50.0, 99.0}) {
    const double v = hist.Percentile(p);
    EXPECT_GE(v, 96.0) << p;
    EXPECT_LE(v, 112.0) << p;
  }
  // Monotone in p across a two-mode distribution.
  Histogram two;
  for (int i = 0; i < 900; ++i) two.ObserveUnconditional(10.0);
  for (int i = 0; i < 100; ++i) two.ObserveUnconditional(10000.0);
  EXPECT_LE(two.Percentile(50.0), two.Percentile(95.0));
  EXPECT_LE(two.Percentile(95.0), two.Percentile(99.9));
  EXPECT_LT(two.Percentile(50.0), 20.0);
  EXPECT_GT(two.Percentile(99.0), 5000.0);
}

TEST(RegistryTest, ScrapeDuringWriteIsSafeAndFindsSeries) {
  Counter& counter = GetCounter("test_scrape_counter", "racing scrape");
  Histogram& hist = GetHistogram("test_scrape_hist_us", "racing scrape");
  const uint64_t count_before = counter.Total();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      // At least one write per thread even if the scrapes below finish
      // before this thread is first scheduled (1-core hosts).
      do {
        counter.Add();
        hist.Observe(123.0);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  // Scrapes race the writers; every dump must be well-formed and contain
  // the registered series.
  for (int i = 0; i < 50; ++i) {
    const std::string text = DumpPrometheusText();
    EXPECT_NE(text.find("# TYPE test_scrape_counter counter"),
              std::string::npos);
    EXPECT_NE(text.find("test_scrape_hist_us_bucket"), std::string::npos);
    const std::string json = DumpJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"test_scrape_hist_us\""), std::string::npos);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GT(counter.Total(), count_before);
  // Post-join read is exact: one more Add must move the total by exactly 1.
  const uint64_t settled = counter.Total();
  counter.Add();
  EXPECT_EQ(counter.Total(), settled + 1);
}

TEST(RegistryTest, LabeledSeriesAreDistinct) {
  Counter& a = GetCounter("test_labeled_total", "per-shard", "shard=\"b0/f0\"");
  Counter& b = GetCounter("test_labeled_total", "per-shard", "shard=\"b0/f1\"");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &GetCounter("test_labeled_total", "per-shard",
                            "shard=\"b0/f0\""));
  a.Add(3);
  b.Add(5);
  const std::string text = DumpPrometheusText();
  EXPECT_NE(text.find("test_labeled_total{shard=\"b0/f0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_labeled_total{shard=\"b0/f1\"}"),
            std::string::npos);
}

TEST(RegistryTest, CallbackGaugeEvaluatesAtScrape) {
  std::atomic<double> depth{7.0};
  Registry::Global().SetCallbackGauge("test_callback_gauge", "live depth",
                                      [&depth] { return depth.load(); });
  EXPECT_NE(DumpPrometheusText().find("test_callback_gauge 7"),
            std::string::npos);
  depth.store(11.0);
  EXPECT_NE(DumpPrometheusText().find("test_callback_gauge 11"),
            std::string::npos);
}

TEST(RegistryTest, DisabledLayerIsInertButShimsKeepCounting) {
  EnabledGuard guard;
  Counter& counter = GetCounter("test_disabled_counter", "test");
  Histogram& hist = GetHistogram("test_disabled_hist", "test");
  SetEnabled(false);
  const uint64_t c0 = counter.Total();
  const uint64_t h0 = hist.Count();
  counter.Add();
  hist.Observe(5.0);
  EXPECT_EQ(counter.Total(), c0);  // gated entry points are no-ops
  EXPECT_EQ(hist.Count(), h0);
  counter.AddUnconditional();  // shim entry points keep working
  hist.ObserveUnconditional(5.0);
  EXPECT_EQ(counter.Total(), c0 + 1);
  EXPECT_EQ(hist.Count(), h0 + 1);
  SetEnabled(true);
  counter.Add();
  EXPECT_EQ(counter.Total(), c0 + 2);
}

TEST(TracerTest, SamplerIsDeterministicOneInN) {
  Tracer& tracer = Tracer::Global();
  tracer.ResetForTesting();
  tracer.SetSampleEvery(8);
  std::vector<bool> sampled;
  for (int i = 0; i < 64; ++i) {
    auto trace = tracer.MaybeSample();
    sampled.push_back(trace != nullptr);
    tracer.Finish(std::move(trace));
  }
  // Exactly every 8th decision, starting at the first.
  for (int i = 0; i < 64; ++i) EXPECT_EQ(sampled[i], i % 8 == 0) << i;
  EXPECT_EQ(tracer.sampled_total(), 8u);
  EXPECT_EQ(tracer.finished_total(), 8u);
  // Re-run after reset: identical decisions (determinism is per fresh
  // counter, not per wall clock).
  tracer.ResetForTesting();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(tracer.MaybeSample() != nullptr, i % 8 == 0) << i;
  }
  tracer.SetSampleEvery(0);
  EXPECT_EQ(tracer.MaybeSample(), nullptr);
  tracer.ResetForTesting();
}

TEST(TracerTest, SpanBufferIsBoundedAndRingKeepsRecent) {
  Trace trace(/*id=*/1);
  for (size_t i = 0; i < Trace::kMaxSpans + 5; ++i) {
    trace.AddSpan("stage", 0.0, 1.0);
  }
  EXPECT_EQ(trace.num_spans(), Trace::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 5u);
  EXPECT_NE(trace.ToString().find("dropped"), std::string::npos);

  Tracer& tracer = Tracer::Global();
  tracer.ResetForTesting();
  tracer.SetSampleEvery(1);  // sample everything
  const size_t total = Tracer::kRingCapacity + 10;
  for (size_t i = 0; i < total; ++i) {
    auto trace_i = tracer.MaybeSample();
    ASSERT_NE(trace_i, nullptr);
    trace_i->AddEvent("done");
    tracer.Finish(std::move(trace_i));
  }
  const std::vector<Trace> recent = tracer.Recent();
  ASSERT_EQ(recent.size(), Tracer::kRingCapacity);
  // Oldest first, and only the newest kRingCapacity survive.
  EXPECT_EQ(recent.front().id(), 10u);
  EXPECT_EQ(recent.back().id(), total - 1);
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_LT(recent[i - 1].id(), recent[i].id());
  }
  tracer.SetSampleEvery(0);
  tracer.ResetForTesting();
}

TEST(ObsE2eTest, LiveServingScrapeShowsTheDashboardSeries) {
  using namespace rmi::serving;
  Tracer::Global().ResetForTesting();
  Tracer::Global().SetSampleEvery(16);

  // Updater side: register two shards (initial rebuild + publish each),
  // then force a second rebuild so retire/reclaim and warm counters move.
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;
  MapUpdaterOptions uopt;
  uopt.min_new_observations = 1u << 30;  // manual triggering only
  MapUpdater updater(&store, &differentiator, &imputer,
                     [] {
                       return std::make_unique<positioning::KnnEstimator>(
                           3, true);
                     },
                     uopt);
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 2;
  vopt.aps_per_floor = 8;
  const auto shards = MakeSyntheticVenue(vopt);
  for (const VenueShard& shard : shards) {
    updater.RegisterShard(shard.id, shard.map);
  }
  ASSERT_TRUE(updater.RebuildNow(shards[0].id));  // publishes v2, retires v1

  // Router side: one mixed-shard batch with a sampled trace.
  ShardRouter router(&store);
  const VenueQuerySet set = MakeVenueQueries(shards, 48, 0.2, 5);
  auto router_trace = std::make_unique<Trace>(/*id=*/999);
  const ShardRouter::BatchResult routed =
      router.LocalizeBatch(set.queries, {}, router_trace.get());
  EXPECT_EQ(routed.positions.size(), set.queries.rows());
  EXPECT_GE(router_trace->num_spans(), 3u);  // classify/pin-validate/fanout

  // Server side: coalesced batches over one shard's snapshot.
  const auto map = MakeSyntheticServingMap(14, 10, 10, 33);
  Rng rng(7);
  auto snap = BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(3, true), rng);
  MapSnapshotStore single_store(snap);
  ServerOptions sopt;
  sopt.max_batch = 16;
  sopt.num_workers = 2;
  LocalizationServer server(&single_store, sopt);
  const la::Matrix queries = MakeSyntheticQueries(map, 192, 0.2, 44);
  std::vector<std::future<geom::Point>> futures;
  for (size_t i = 0; i < queries.rows(); ++i) {
    futures.push_back(server.Submit(MatrixRow(queries, i)));
  }
  for (auto& f : futures) f.get();
  server.Stop();

  // One scrape shows every dashboard series with live data.
  const std::string text = DumpPrometheusText();
  // Per-stage request latency histograms (queue -> classify -> rank ->
  // rescore) plus end-to-end fulfill.
  for (const char* series :
       {"rmi_server_stage_queue_us_count", "rmi_router_stage_classify_us_count",
        "rmi_estimator_stage_rank_us_count",
        "rmi_estimator_stage_rescore_us_count", "rmi_server_fulfill_us_count",
        "rmi_server_batch_size_requests_count",
        "rmi_updater_stage_impute_us_count"}) {
    EXPECT_GT(ScrapeValue(text, series), 0.0) << series;
  }
  // Queue depth drained back to zero after Stop.
  EXPECT_DOUBLE_EQ(ScrapeValue(text, "rmi_server_queue_depth"), 0.0);
  // Pool steal/help counters exist (nonzero only on multi-core hosts) and
  // jobs ran.
  EXPECT_GE(ScrapeValue(text, "rmi_pool_steals_total"), 0.0);
  EXPECT_GE(ScrapeValue(text, "rmi_pool_help_front_total"), 0.0);
  EXPECT_GT(ScrapeValue(text, "rmi_pool_jobs_total"), 0.0);
  // Epoch retire/reclaim moved: the second rebuild retired the first
  // snapshot generation.
  EXPECT_GT(ScrapeValue(text, "rmi_epoch_retired_total"), 0.0);
  EXPECT_GE(ScrapeValue(text, "rmi_epoch_reclaimed_total"), 0.0);
  EXPECT_GE(ScrapeValue(text, "rmi_epoch_deferred_objects"), 0.0);
  // Per-shard rebuild stage gauges carry the shard label.
  const std::string shard_label = rmap::ToString(shards[0].id);
  EXPECT_NE(text.find("rmi_updater_last_impute_seconds{shard=\"" +
                      shard_label + "\"}"),
            std::string::npos);
  EXPECT_NE(text.find("rmi_updater_last_fit_seconds{shard=\"" + shard_label +
                      "\"}"),
            std::string::npos);
  // Completed requests reached the registry (server answered every row).
  EXPECT_GE(ScrapeValue(text, "rmi_server_requests_total"),
            static_cast<double>(queries.rows()));

  // Sampled traces completed and recorded the serving spans.
  EXPECT_GT(Tracer::Global().finished_total(), 0u);
  const std::vector<Trace> recent = Tracer::Global().Recent();
  ASSERT_FALSE(recent.empty());
  bool saw_queue_span = false;
  for (const Trace& t : recent) {
    for (size_t s = 0; s < t.num_spans(); ++s) {
      saw_queue_span |= std::string(t.span(s).name) == "queue";
    }
  }
  EXPECT_TRUE(saw_queue_span);
  Tracer::Global().SetSampleEvery(0);
  Tracer::Global().ResetForTesting();
}

}  // namespace
}  // namespace rmi::obs
