// Multi-floor sharded serving:
//  * ShardedSnapshotStore edge cases — publish to an unknown shard creates
//    it atomically; queries before the first publish are rejected, never
//    crash; readers racing the first publish converge to success;
//  * the AP-overlap floor classifier routes venue queries to the true
//    floor, and falls back to the strongest-AP rule (deterministically)
//    when AP sets overlap across floors;
//  * ShardRouter::LocalizeBatch equals the per-shard estimator bit-for-bit
//    and classified routing equals hinted routing;
//  * MapUpdater — volume and staleness triggers rebuild + hot-swap
//    publish, ingest into unknown shards is rejected, shutdown with a
//    rebuild in flight completes the publish;
//  * the accuracy-under-update scenario: ingesting a fresh survey into a
//    drifted shard improves post-rebuild accuracy while concurrent
//    mixed-shard queries keep being answered and routed correctly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "clustering/differentiation.h"
#include "common/missing.h"
#include "common/rng.h"
#include "eval/update_scenario.h"
#include "imputers/autocorrelation.h"
#include "imputers/traditional.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/synthetic.h"

namespace rmi::serving {
namespace {

std::shared_ptr<const MapSnapshot> SnapshotOf(const rmap::RadioMap& map,
                                              uint64_t version = 0,
                                              size_t k = 3) {
  Rng rng(7 + version);
  SnapshotOptions opt;
  opt.version = version;
  return BuildSnapshot(map, std::make_unique<positioning::KnnEstimator>(k, true),
                       rng, opt);
}

/// Publishes every venue floor into `store`.
void PublishVenue(ShardedSnapshotStore* store,
                  const std::vector<VenueShard>& shards) {
  for (const VenueShard& shard : shards) {
    store->Publish(shard.id, SnapshotOf(shard.map));
  }
}

EstimatorFactory WknnFactory(size_t k = 3) {
  return [k] { return std::make_unique<positioning::KnnEstimator>(k, true); };
}

/// Imputer wrapper that sleeps inside Impute — makes "rebuild in flight"
/// a state the shutdown test can reliably hit.
class SlowImputer : public imputers::Imputer {
 public:
  explicit SlowImputer(double sleep_ms) : sleep_ms_(sleep_ms) {}
  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms_));
    return inner_.Impute(map, amended_mask, rng);
  }
  std::string name() const override { return "SlowLI"; }

 private:
  double sleep_ms_;
  imputers::LinearInterpolationImputer inner_;
};

template <typename Pred>
bool WaitFor(Pred pred, double timeout_s = 10.0) {
  Timer t;
  while (!pred()) {
    if (t.ElapsedSeconds() > timeout_s) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ShardProfileTest, AudibleSetsFollowTheVenueLayout) {
  VenueOptions opt;
  opt.num_buildings = 1;
  opt.floors_per_building = 3;
  opt.aps_per_floor = 8;
  opt.bleed_aps = 2;
  const auto shards = MakeSyntheticVenue(opt);
  ASSERT_EQ(shards.size(), 3u);
  const ShardProfile profile = BuildShardProfile(*SnapshotOf(shards[1].map));
  ASSERT_EQ(profile.num_aps(), 24u);
  // Floor 1 hears its own block (APs 8..15) plus 2 bleed APs from each of
  // floors 0 and 2 — and nothing else.
  EXPECT_EQ(profile.num_observable, 8u + 2u + 2u);
  for (size_t ap = 8; ap < 16; ++ap) EXPECT_TRUE(profile.observable[ap]);
  EXPECT_TRUE(profile.observable[0]);   // bleed from floor 0
  EXPECT_TRUE(profile.observable[1]);
  EXPECT_FALSE(profile.observable[2]);  // beyond the bleed set
  EXPECT_TRUE(profile.observable[16]);  // bleed from floor 2
  EXPECT_FALSE(profile.observable[18]);
  // Own APs peak louder than the slab-attenuated bleed-through ones.
  EXPECT_GT(profile.peak_rssi[8], profile.peak_rssi[0]);
}

TEST(ShardedStoreTest, PublishToUnknownShardCreatesIt) {
  ShardedSnapshotStore store;
  EXPECT_EQ(store.num_shards(), 0u);
  const rmap::ShardId id{5, 2};
  EXPECT_FALSE(store.Contains(id));
  EXPECT_EQ(store.Current(id), nullptr);

  const auto map = MakeSyntheticServingMap(8, 6, 6, 3);
  store.Publish(id, SnapshotOf(map));
  EXPECT_TRUE(store.Contains(id));
  EXPECT_EQ(store.num_shards(), 1u);
  ASSERT_NE(store.Current(id), nullptr);
  ASSERT_NE(store.Profile(id), nullptr);
  EXPECT_EQ(store.publish_count(), 1u);
  ASSERT_EQ(store.ShardIds().size(), 1u);
  EXPECT_EQ(store.ShardIds()[0], id);

  // Republish to the now-known shard: same shard count, new generation.
  store.Publish(id, SnapshotOf(map, /*version=*/1));
  EXPECT_EQ(store.num_shards(), 1u);
  EXPECT_EQ(store.Current(id)->version, 1u);
  EXPECT_EQ(store.publish_count(), 2u);
}

TEST(ShardedStoreTest, QueryBeforeFirstPublishIsRejectedNotCrashed) {
  ShardedSnapshotStore store;
  ShardRouter router(&store, /*num_threads=*/1);
  const auto map = MakeSyntheticServingMap(8, 6, 6, 3);
  const la::Matrix queries = MakeSyntheticQueries(map, 4, 0.0, 5);
  const std::vector<double> q = MatrixRow(queries, 0);

  // Empty store: nothing to classify against, nothing to route to.
  EXPECT_FALSE(router.ClassifyFloor(q).has_value());
  EXPECT_THROW(router.LocalizeAuto(q), std::runtime_error);
  EXPECT_THROW(router.Localize(rmap::ShardId{0, 0}, q), std::runtime_error);
  EXPECT_THROW(router.LocalizeBatch(queries), std::runtime_error);

  // A published shard serves; an unknown sibling still rejects.
  store.Publish(rmap::ShardId{0, 0}, SnapshotOf(map));
  EXPECT_NO_THROW(router.Localize(rmap::ShardId{0, 0}, q));
  EXPECT_THROW(router.Localize(rmap::ShardId{0, 1}, q), std::runtime_error);
}

TEST(ShardedStoreTest, ReadersRacingTheFirstPublishConvergeToSuccess) {
  ShardedSnapshotStore store;
  ShardRouter router(&store, /*num_threads=*/1);
  const auto map = MakeSyntheticServingMap(10, 8, 8, 9);
  const std::vector<double> q =
      MatrixRow(MakeSyntheticQueries(map, 1, 0.0, 11), 0);

  std::atomic<bool> served{false};
  std::atomic<bool> crashed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!served.load()) {
        try {
          const auto result = router.LocalizeAuto(q);
          if (!std::isfinite(result.position.x)) crashed.store(true);
          served.store(true);
        } catch (const std::runtime_error&) {
          std::this_thread::yield();  // store still empty — expected
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  store.Publish(rmap::ShardId{1, 4}, SnapshotOf(map));
  for (auto& t : readers) t.join();
  EXPECT_TRUE(served.load());
  EXPECT_FALSE(crashed.load());
}

TEST(FloorClassifierTest, RoutesVenueQueriesToTheTrueFloor) {
  VenueOptions opt;  // 2 buildings x 3 floors, bleed-through on
  const auto shards = MakeSyntheticVenue(opt);
  ShardedSnapshotStore store;
  PublishVenue(&store, shards);
  ShardRouter router(&store, /*num_threads=*/1);

  const VenueQuerySet set = MakeVenueQueries(shards, 120, 0.3, 17);
  size_t correct = 0;
  for (size_t i = 0; i < set.queries.rows(); ++i) {
    const auto route = router.ClassifyFloor(MatrixRow(set.queries, i));
    ASSERT_TRUE(route.has_value());
    correct += route->shard == set.shard[i];
  }
  // Disjoint own-floor AP blocks dominate the overlap score; bleed-through
  // neighbors cannot reach it.
  EXPECT_EQ(correct, set.queries.rows());
}

TEST(FloorClassifierTest, OverlappingApSetsFallBackToStrongestAp) {
  // Every AP of each floor bleeds through the slab: both floors observe
  // the identical AP set, so overlap always ties and only the
  // strongest-AP rule (who hears the query's loudest AP best) can pick
  // the floor.
  VenueOptions opt;
  opt.num_buildings = 1;
  opt.floors_per_building = 2;
  opt.aps_per_floor = 8;
  opt.bleed_aps = 8;
  const auto shards = MakeSyntheticVenue(opt);
  const ShardProfile p0 = BuildShardProfile(*SnapshotOf(shards[0].map));
  const ShardProfile p1 = BuildShardProfile(*SnapshotOf(shards[1].map));
  ASSERT_EQ(p0.num_observable, 16u);
  ASSERT_EQ(p1.num_observable, 16u);

  ShardedSnapshotStore store;
  PublishVenue(&store, shards);
  ShardRouter router(&store, /*num_threads=*/1);

  const VenueQuerySet set = MakeVenueQueries(shards, 80, 0.2, 23);
  size_t correct = 0;
  for (size_t i = 0; i < set.queries.rows(); ++i) {
    const auto route = router.ClassifyFloor(MatrixRow(set.queries, i));
    ASSERT_TRUE(route.has_value());
    EXPECT_TRUE(route->by_strongest_ap) << "overlap should have tied";
    correct += route->shard == set.shard[i];
  }
  // The loudest AP a device hears is mounted on its own floor, where the
  // references hear it un-attenuated.
  EXPECT_GE(correct, set.queries.rows() * 9 / 10);

  // Fully identical profiles (same map on both shards): the final
  // tie-break is the smallest ShardId — deterministic, never arbitrary.
  ShardedSnapshotStore twin_store;
  twin_store.Publish(rmap::ShardId{0, 0}, SnapshotOf(shards[0].map));
  twin_store.Publish(rmap::ShardId{0, 1}, SnapshotOf(shards[0].map));
  ShardRouter twin_router(&twin_store, /*num_threads=*/1);
  for (size_t i = 0; i < 10; ++i) {
    const auto route = twin_router.ClassifyFloor(MatrixRow(set.queries, i));
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->shard, (rmap::ShardId{0, 0}));
    EXPECT_TRUE(route->by_strongest_ap);
  }
}

TEST(FloorClassifierTest, QuerySharingNoApWithAnyShardIsUnroutable) {
  // Only floor 0 is published; with bleed off, its profile hears exactly
  // APs [0, aps_per_floor). A query observing only floor 1's APs overlaps
  // no published shard — it must be unroutable, not confidently routed to
  // an unrelated floor's map.
  VenueOptions opt;
  opt.num_buildings = 1;
  opt.floors_per_building = 2;
  opt.aps_per_floor = 6;
  opt.bleed_aps = 0;
  const auto shards = MakeSyntheticVenue(opt);
  ShardedSnapshotStore store;
  store.Publish(shards[0].id, SnapshotOf(shards[0].map));
  ShardRouter router(&store, /*num_threads=*/1);

  std::vector<double> foreign(shards[0].map.num_aps(), kNull);
  foreign[opt.aps_per_floor + 1] = -50.0;  // an AP only floor 1 hears
  EXPECT_FALSE(router.ClassifyFloor(foreign).has_value());
  EXPECT_THROW(router.LocalizeAuto(foreign), std::runtime_error);

  std::vector<double> native(shards[0].map.num_aps(), kNull);
  native[1] = -50.0;  // floor 0's own AP: routable again
  ASSERT_TRUE(router.ClassifyFloor(native).has_value());
  EXPECT_EQ(router.ClassifyFloor(native)->shard, shards[0].id);
}

TEST(ShardRouterTest, MisalignedHintsAreRejectedNotAborted) {
  VenueOptions opt;
  opt.num_buildings = 1;
  opt.floors_per_building = 2;
  const auto shards = MakeSyntheticVenue(opt);
  ShardedSnapshotStore store;
  PublishVenue(&store, shards);
  ShardRouter router(&store, /*num_threads=*/1);

  const VenueQuerySet set = MakeVenueQueries(shards, 8, 0.0, 71);
  std::vector<std::optional<rmap::ShardId>> short_hints(set.queries.rows() - 1,
                                                        shards[0].id);
  EXPECT_THROW(router.LocalizeBatch(set.queries, short_hints),
               std::runtime_error);
}

TEST(ShardRouterTest, HintedBatchMatchesPerShardEstimatorBitForBit) {
  VenueOptions opt;
  opt.num_buildings = 2;
  opt.floors_per_building = 2;
  const auto shards = MakeSyntheticVenue(opt);
  ShardedSnapshotStore store;
  PublishVenue(&store, shards);
  ShardRouter router(&store);

  const VenueQuerySet set = MakeVenueQueries(shards, 64, 0.25, 31);
  std::vector<std::optional<rmap::ShardId>> hints(set.shard.begin(),
                                                  set.shard.end());
  const ShardRouter::BatchResult routed =
      router.LocalizeBatch(set.queries, hints);
  ASSERT_EQ(routed.positions.size(), set.queries.rows());
  EXPECT_EQ(routed.classified, 0u);
  EXPECT_GT(routed.shard_groups, 1u);
  for (size_t i = 0; i < set.queries.rows(); ++i) {
    const auto snap = store.Current(set.shard[i]);
    ASSERT_NE(snap, nullptr);
    const geom::Point want = snap->estimator->Estimate(MatrixRow(set.queries, i));
    EXPECT_DOUBLE_EQ(routed.positions[i].x, want.x) << "row " << i;
    EXPECT_DOUBLE_EQ(routed.positions[i].y, want.y) << "row " << i;
    EXPECT_EQ(routed.shards[i], set.shard[i]);
  }
}

TEST(ShardRouterTest, ClassifiedBatchMatchesHintedBatch) {
  VenueOptions opt;
  const auto shards = MakeSyntheticVenue(opt);
  ShardedSnapshotStore store;
  PublishVenue(&store, shards);
  ShardRouter router(&store);

  const VenueQuerySet set = MakeVenueQueries(shards, 48, 0.3, 37);
  std::vector<std::optional<rmap::ShardId>> hints(set.shard.begin(),
                                                  set.shard.end());
  const auto hinted = router.LocalizeBatch(set.queries, hints);
  const auto classified = router.LocalizeBatch(set.queries);
  EXPECT_EQ(classified.classified, set.queries.rows());
  for (size_t i = 0; i < set.queries.rows(); ++i) {
    EXPECT_EQ(classified.shards[i], set.shard[i]) << "row " << i;
    EXPECT_DOUBLE_EQ(classified.positions[i].x, hinted.positions[i].x);
    EXPECT_DOUBLE_EQ(classified.positions[i].y, hinted.positions[i].y);
  }
}

TEST(MapUpdaterTest, VolumeThresholdTriggersBackgroundRebuildAndHotSwap) {
  const auto map = MakeSyntheticServingMap(10, 8, 8, 41);
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;
  MapUpdaterOptions opt;
  opt.min_new_observations = 10;
  opt.poll_interval_ms = 1.0;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);

  const rmap::ShardId id{0, 0};
  updater.RegisterShard(id, map);
  ASSERT_NE(store.Current(id), nullptr);
  EXPECT_EQ(store.Current(id)->version, 1u);
  EXPECT_EQ(updater.Stats().rebuilds_completed, 1u);

  updater.Start();
  Rng rng(43);
  for (size_t i = 0; i < 10; ++i) {
    rmap::Record obs = map.record(rng.Index(map.size()));
    obs.id = rmap::Record::kUnassignedId;
    obs.time += double(map.size());
    updater.Ingest(id, std::move(obs));
  }
  ASSERT_TRUE(WaitFor([&] { return updater.Stats().rebuilds_completed >= 2; }));
  updater.Stop();
  EXPECT_EQ(store.Current(id)->version, 2u);
  EXPECT_EQ(updater.PendingObservations(id), 0u);
  EXPECT_EQ(updater.Stats().ingested, 10u);
}

TEST(MapUpdaterTest, StalenessThresholdTriggersRebuildBelowVolume) {
  const auto map = MakeSyntheticServingMap(8, 6, 6, 47);
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;
  MapUpdaterOptions opt;
  opt.min_new_observations = 1000000;  // volume alone would never trip
  opt.max_staleness_seconds = 0.01;
  opt.poll_interval_ms = 1.0;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);

  const rmap::ShardId id{2, 1};
  updater.RegisterShard(id, map);
  updater.Start();
  rmap::Record obs = map.record(3);
  obs.id = rmap::Record::kUnassignedId;
  updater.Ingest(id, std::move(obs));
  ASSERT_TRUE(WaitFor([&] { return updater.Stats().rebuilds_completed >= 2; }));
  updater.Stop();
  EXPECT_GE(store.Current(id)->version, 2u);
}

TEST(MapUpdaterTest, IngestIntoUnknownShardOrWrongWidthIsRejected) {
  const auto map = MakeSyntheticServingMap(8, 6, 6, 53);
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory());
  updater.RegisterShard(rmap::ShardId{0, 0}, map);

  rmap::Record obs = map.record(0);
  EXPECT_THROW(updater.Ingest(rmap::ShardId{9, 9}, obs), std::runtime_error);
  rmap::Record narrow;
  narrow.rssi.assign(3, -50.0);
  EXPECT_THROW(updater.Ingest(rmap::ShardId{0, 0}, std::move(narrow)),
               std::runtime_error);
  EXPECT_EQ(updater.Stats().ingested, 0u);
  EXPECT_NO_THROW(updater.Ingest(rmap::ShardId{0, 0}, std::move(obs)));
  EXPECT_EQ(updater.Stats().ingested, 1u);
}

TEST(MapUpdaterTest, ShutdownWithRebuildInFlightCompletesThePublish) {
  const auto map = MakeSyntheticServingMap(8, 6, 6, 59);
  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  SlowImputer imputer(/*sleep_ms=*/150.0);
  MapUpdaterOptions opt;
  opt.min_new_observations = 1;
  opt.poll_interval_ms = 1.0;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);

  const rmap::ShardId id{0, 3};
  updater.RegisterShard(id, map);
  updater.Start();
  rmap::Record obs = map.record(5);
  obs.id = rmap::Record::kUnassignedId;
  updater.Ingest(id, std::move(obs));
  // Wait until the background rebuild is genuinely in flight (the delta
  // was drained but the publish has not landed yet), then shut down.
  ASSERT_TRUE(WaitFor([&] {
    const MapUpdaterStats s = updater.Stats();
    return s.rebuilds_started >= 2 || s.rebuilds_completed >= 2;
  }));
  updater.Stop();  // must block until the in-flight rebuild publishes
  const MapUpdaterStats stats = updater.Stats();
  EXPECT_EQ(stats.rebuilds_started, stats.rebuilds_completed);
  EXPECT_GE(stats.rebuilds_completed, 2u);
  EXPECT_GE(store.Current(id)->version, 2u);
}

TEST(UpdateScenarioTest, FreshSurveyRepairsTheDriftedShard) {
  cluster::MarOnlyDifferentiator differentiator;
  imputers::MiceImputer imputer;
  eval::UpdateScenarioOptions opt;
  const eval::UpdateScenarioResult result = eval::RunAccuracyUnderUpdate(
      differentiator, imputer, WknnFactory(), opt);
  EXPECT_EQ(result.snapshot_versions, 2u);
  EXPECT_EQ(result.ingested, opt.nx * opt.ny);
  EXPECT_GT(result.stale_ape, 0.0);
  // The acceptance bar: the rebuilt snapshot must beat the stale one on
  // queries from the current radio environment.
  EXPECT_LT(result.updated_ape, result.stale_ape);
}

TEST(EndToEndTest, ConcurrentMixedShardQueriesDuringLiveUpdates) {
  VenueOptions vopt;
  vopt.num_buildings = 2;
  vopt.floors_per_building = 2;
  vopt.nx = 10;
  vopt.ny = 8;
  vopt.aps_per_floor = 8;
  const auto shards = MakeSyntheticVenue(vopt);

  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;
  MapUpdaterOptions uopt;
  uopt.min_new_observations = 8;
  uopt.poll_interval_ms = 1.0;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), uopt);
  for (const VenueShard& shard : shards) {
    updater.RegisterShard(shard.id, shard.map);
  }
  updater.Start();

  const VenueQuerySet set = MakeVenueQueries(shards, 64, 0.25, 61);
  ShardRouter router(&store);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const auto routed = router.LocalizeBatch(set.queries);
          for (size_t i = 0; i < set.queries.rows(); ++i) {
            // Never a wrong floor, never a torn answer, during hot-swaps.
            if (routed.shards[i] != set.shard[i] ||
                !std::isfinite(routed.positions[i].x) ||
                !std::isfinite(routed.positions[i].y)) {
              failed.store(true);
              return;
            }
          }
          answered.fetch_add(set.queries.rows(), std::memory_order_relaxed);
        } catch (const std::exception&) {
          failed.store(true);  // no query may be rejected mid-update
          return;
        }
      }
    });
  }

  // Feed fresh observations into one shard of each building; every 8
  // trips a rebuild + hot-swap while the clients hammer all shards.
  Rng rng(67);
  const size_t base_completed = updater.Stats().rebuilds_completed;
  for (size_t round = 0; round < 3; ++round) {
    for (const rmap::ShardId id :
         {rmap::ShardId{0, 0}, rmap::ShardId{1, 1}}) {
      const rmap::RadioMap& truth =
          shards[size_t(id.building) * 2 + size_t(id.floor)].map;
      for (size_t i = 0; i < 8; ++i) {
        rmap::Record obs = truth.record(rng.Index(truth.size()));
        obs.id = rmap::Record::kUnassignedId;
        obs.time += double((round + 1) * truth.size());
        if (rng.Bernoulli(0.3)) obs.has_rp = false;
        updater.Ingest(id, std::move(obs));
      }
    }
    ASSERT_TRUE(WaitFor([&] {
      return updater.Stats().rebuilds_completed >=
             base_completed + 2 * (round + 1);
    }));
  }
  // Let the clients observe the final generation too.
  ASSERT_TRUE(WaitFor([&] { return answered.load() >= 10 * 64 || failed.load(); }));
  stop.store(true);
  for (auto& t : clients) t.join();
  updater.Stop();

  EXPECT_FALSE(failed.load())
      << "a query blocked, tore, was rejected, or routed to a wrong floor";
  EXPECT_GE(store.Current(rmap::ShardId{0, 0})->version, 4u);
  EXPECT_GE(store.Current(rmap::ShardId{1, 1})->version, 4u);
  EXPECT_EQ(store.Current(rmap::ShardId{0, 1})->version, 1u);
}

}  // namespace
}  // namespace rmi::serving
