// End-to-end integration checks: the whole framework on a small synthetic
// venue, asserting the paper's qualitative claims in loose form.
#include <gtest/gtest.h>

#include "eval/factories.h"
#include "eval/pipeline.h"
#include "survey/survey.h"

namespace rmi::eval {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new survey::SurveyDataset(survey::MakeKaideDataset(/*scale=*/0.05));
    env_ = new BenchEnv();
    env_->epochs = 30;
  }
  static void TearDownTestSuite() {
    delete ds_;
    delete env_;
  }
  static survey::SurveyDataset* ds_;
  static BenchEnv* env_;
};

survey::SurveyDataset* IntegrationTest::ds_ = nullptr;
BenchEnv* IntegrationTest::env_ = nullptr;

TEST_F(IntegrationTest, DatasetShapeSane) {
  EXPECT_GT(ds_->map.size(), 200u);
  EXPECT_GT(ds_->map.MissingRssiRate(), 0.7);
  EXPECT_GT(ds_->map.MissingRpRate(), 0.5);
}

TEST_F(IntegrationTest, DifferentiatorsAgreeWithGroundTruthAboveChance) {
  // The clustering differentiators must label the synthetic ground-truth
  // MAR/MNAR cells with balanced accuracy above 0.5 (chance).
  for (const char* name : {"TopoAC", "DasaKM"}) {
    auto diff = MakeDifferentiator(name, &ds_->venue);
    Rng rng(1);
    const auto mask = diff->Differentiate(ds_->map, rng);
    size_t mar_total = 0, mar_hit = 0, mnar_total = 0, mnar_hit = 0;
    for (size_t i = 0; i < ds_->map.size(); ++i) {
      for (size_t j = 0; j < ds_->map.num_aps(); ++j) {
        const auto truth = ds_->truth.mask.at(i, j);
        const auto pred = mask.at(i, j);
        if (truth == rmap::MaskValue::kMar) {
          ++mar_total;
          mar_hit += (pred == rmap::MaskValue::kMar);
        } else if (truth == rmap::MaskValue::kMnar) {
          ++mnar_total;
          mnar_hit += (pred == rmap::MaskValue::kMnar);
        }
      }
    }
    ASSERT_GT(mar_total, 0u);
    ASSERT_GT(mnar_total, 0u);
    const double tpr = double(mar_hit) / double(mar_total);
    const double tnr = double(mnar_hit) / double(mnar_total);
    EXPECT_GT((tpr + tnr) / 2.0, 0.55) << name << " tpr=" << tpr
                                       << " tnr=" << tnr;
  }
}

TEST_F(IntegrationTest, BiSimBeatsFloorFillOnMarImputation) {
  // Impute with T-BiSIM and compare MAR-cell predictions against the
  // simulator's true mean RSSI; must beat the -100 dBm floor fill clearly.
  auto diff = MakeDifferentiator("TopoAC", &ds_->venue);
  auto bisim = MakeImputer("BiSIM", ds_->venue, *env_);
  Rng rng(2);
  rmap::RadioMap working = ds_->map;
  auto mask = diff->Differentiate(working, rng);
  imputers::FillMnar(&working, &mask);
  const auto imputed = bisim->Impute(working, mask, rng);

  double bisim_err = 0.0, floor_err = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < ds_->map.size(); ++i) {
    for (size_t j = 0; j < ds_->map.num_aps(); ++j) {
      if (mask.at(i, j) != rmap::MaskValue::kMar) continue;
      if (ds_->truth.mask.at(i, j) != rmap::MaskValue::kMar) continue;
      const double truth = ds_->truth.mean_rssi(i, j);
      bisim_err += std::fabs(imputed.record(i).rssi[j] - truth);
      floor_err += std::fabs(-100.0 - truth);
      ++count;
    }
  }
  ASSERT_GT(count, 10u);
  EXPECT_LT(bisim_err, 0.8 * floor_err);
}

TEST_F(IntegrationTest, DifferentiationBeatsMnarOnly) {
  // Core claim of Fig. 12: a clustering differentiator + BiSIM beats
  // MNAR-only + BiSIM on positioning accuracy. APE on a single small test
  // split is noisy, so average over splits with a 30% hold-out.
  auto bisim = MakeImputer("BiSIM", ds_->venue, *env_);
  auto run = [&](const char* diff_name) {
    auto diff = MakeDifferentiator(diff_name, &ds_->venue);
    double sum = 0.0;
    for (uint64_t seed : {99, 100, 101}) {
      auto wknn = MakeEstimator("WKNN");
      PipelineOptions opt;
      opt.seed = seed;
      opt.test_fraction = 0.3;
      sum += RunPipeline(ds_->map, *diff, *bisim, *wknn, opt).ape;
    }
    return sum / 3.0;
  };
  const double ape_topo = run("TopoAC");
  const double ape_mnar = run("MNAR-only");
  // Loose: TopoAC should not be materially worse than MNAR-only, and
  // typically better.
  EXPECT_LT(ape_topo, ape_mnar * 1.15)
      << "TopoAC=" << ape_topo << " MNAR-only=" << ape_mnar;
}

TEST_F(IntegrationTest, BiSimBeatsTraditionalImputerOnApe) {
  // Core claim of Table VI (loose form): T-BiSIM beats CD on APE.
  auto topo = MakeDifferentiator("TopoAC", &ds_->venue);
  PipelineOptions opt;
  opt.seed = 7;
  auto bisim = MakeImputer("BiSIM", ds_->venue, *env_);
  auto wknn1 = MakeEstimator("WKNN");
  const double ape_bisim =
      RunPipeline(ds_->map, *topo, *bisim, *wknn1, opt).ape;
  auto cd = MakeImputer("CD", ds_->venue, *env_);
  auto wknn2 = MakeEstimator("WKNN");
  const double ape_cd = RunPipeline(ds_->map, *topo, *cd, *wknn2, opt).ape;
  EXPECT_LT(ape_bisim, ape_cd)
      << "BiSIM=" << ape_bisim << " CD=" << ape_cd;
}

TEST_F(IntegrationTest, AllImputersCompleteThePresetMap) {
  auto diff = MakeDifferentiator("MNAR-only", &ds_->venue);
  BenchEnv quick;
  quick.epochs = 2;
  for (const char* name : {"LI", "SL", "MICE", "BRITS"}) {
    auto imputer = MakeImputer(name, ds_->venue, quick);
    Rng rng(3);
    const auto imputed =
        DifferentiateAndImpute(ds_->map, *diff, *imputer, rng);
    for (size_t i = 0; i < imputed.size(); ++i) {
      EXPECT_TRUE(imputed.record(i).has_rp) << name;
      for (double v : imputed.record(i).rssi) {
        EXPECT_FALSE(IsNull(v)) << name;
      }
    }
  }
}

}  // namespace
}  // namespace rmi::eval
