// Fault injection against MapUpdater's rebuild pipeline: a throwing
// imputer must not kill the trigger loop — the shard keeps serving its
// previous snapshot, the failure lands in MapUpdaterStats::rebuilds_failed
// and the rmi_updater_rebuild_failures_total counter, and the folded
// observations survive into the next successful rebuild. A hanging imputer
// stalls only the rebuild in flight — serving and ingest continue from the
// published generation — and Stop() drains cleanly once the imputer
// returns. This suite runs under the CI TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "clustering/differentiation.h"
#include "common/timer.h"
#include "imputers/traditional.h"
#include "obs/metrics.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/shard_router.h"
#include "serving/synthetic.h"

namespace rmi::serving {
namespace {

EstimatorFactory WknnFactory() {
  return [] { return std::make_unique<positioning::KnnEstimator>(3, true); };
}

template <typename Pred>
bool WaitFor(Pred pred, double timeout_s = 30.0) {
  Timer t;
  while (!pred()) {
    if (t.ElapsedSeconds() > timeout_s) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Delegates to LI; throws out of every imputation while `fail` is set.
class FlakyImputer : public imputers::Imputer {
 public:
  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override {
    if (fail.load(std::memory_order_acquire)) {
      throw std::runtime_error("injected imputer failure");
    }
    return inner_.Impute(map, amended_mask, rng);
  }
  std::string name() const override { return "Flaky"; }

  std::atomic<bool> fail{false};

 private:
  imputers::LinearInterpolationImputer inner_;
};

/// Delegates to LI; while armed, every imputation blocks until Release().
class HangingImputer : public imputers::Imputer {
 public:
  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override {
    if (armed.load(std::memory_order_acquire)) {
      entered.fetch_add(1, std::memory_order_acq_rel);
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return released_; });
    }
    return inner_.Impute(map, amended_mask, rng);
  }
  std::string name() const override { return "Hanging"; }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  std::atomic<bool> armed{false};
  mutable std::atomic<size_t> entered{0};

 private:
  imputers::LinearInterpolationImputer inner_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool released_ = false;
};

rmap::Record ObservationLike(const rmap::RadioMap& map, double t) {
  rmap::Record r = map.record(0);
  r.id = rmap::Record::kUnassignedId;
  r.time = t;
  return r;
}

TEST(UpdaterFaultTest, ThrowingImputerKeepsServingAndTheLoopAlive) {
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 2;
  const auto shards = MakeSyntheticVenue(vopt);
  const size_t base_rows = shards[0].map.size();

  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  FlakyImputer imputer;
  MapUpdaterOptions opt;
  opt.min_new_observations = 4;
  opt.poll_interval_ms = 1.0;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);
  for (const VenueShard& shard : shards) {
    updater.RegisterShard(shard.id, shard.map);
  }
  const rmap::ShardId victim = shards[0].id;
  ASSERT_EQ(store.Current(victim)->version, 1u);

  obs::Counter& failures = obs::GetCounter(
      "rmi_updater_rebuild_failures_total",
      "Rebuilds whose impute/fit/publish pipeline threw (nothing "
      "published; the shard keeps serving its previous snapshot)");
  const uint64_t failures_before = failures.Total();

  updater.Start();
  imputer.fail.store(true, std::memory_order_release);
  for (int i = 0; i < 4; ++i) {
    updater.Ingest(victim, ObservationLike(shards[0].map, 100.0 + i));
  }
  ASSERT_TRUE(WaitFor([&] { return updater.Stats().rebuilds_failed >= 1; }))
      << "trigger loop never recorded the injected failure";

  // Nothing was published: the shard still serves generation 1, and the
  // failure is visible in both the stats and the registry counter.
  EXPECT_EQ(store.Current(victim)->version, 1u);
  EXPECT_GE(failures.Total(), failures_before + 1);
  EXPECT_GE(updater.Stats().per_shard.at(victim).failed, 1u);

  // The loop survived: heal the imputer, feed a fresh delta window, and
  // the shard republishes — with the failure window's observations folded
  // in (they were never lost).
  imputer.fail.store(false, std::memory_order_release);
  for (int i = 0; i < 4; ++i) {
    updater.Ingest(victim, ObservationLike(shards[0].map, 200.0 + i));
  }
  ASSERT_TRUE(WaitFor([&] {
    const auto current = store.Current(victim);
    return current != nullptr && current->version >= 2;
  })) << "trigger loop did not recover after the imputer healed";
  EXPECT_EQ(store.Current(victim)->positions.size(), base_rows + 8);

  updater.Stop();
  const MapUpdaterStats stats = updater.Stats();
  EXPECT_GE(stats.rebuilds_failed, 1u);
  EXPECT_GE(stats.rebuilds_completed, shards.size() + 1);
  // Memory-only run: the persistence counters never move.
  EXPECT_EQ(stats.snapshots_persisted, 0u);
  EXPECT_EQ(stats.wal_records_replayed, 0u);
}

TEST(UpdaterFaultTest, PersistenceStallsWithTheFaultAndReplaysAfterRestart) {
  // With persistence on, a failing rebuild persists nothing — the durable
  // state freezes at the last good snapshot while the WAL keeps absorbing
  // ingest — and a restart over the shard dir restores that snapshot and
  // replays the stranded deltas.
  const std::string persist_root =
      std::filesystem::path(::testing::TempDir()) / "fault_persist";
  std::filesystem::remove_all(persist_root);
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 2;
  const auto shards = MakeSyntheticVenue(vopt);
  const rmap::ShardId victim = shards[0].id;

  ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  FlakyImputer imputer;
  MapUpdaterOptions opt;
  opt.min_new_observations = 4;
  opt.poll_interval_ms = 1.0;
  opt.persist_dir = persist_root;
  opt.wal_sync_every = 1;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);
  for (const VenueShard& shard : shards) {
    updater.RegisterShard(shard.id, shard.map);
  }
  // Every registration publish also persisted a snapshot file.
  const size_t persisted_baseline = updater.Stats().snapshots_persisted;
  EXPECT_EQ(persisted_baseline, shards.size());

  updater.Start();
  imputer.fail.store(true, std::memory_order_release);
  for (int i = 0; i < 4; ++i) {
    updater.Ingest(victim, ObservationLike(shards[0].map, 100.0 + i));
  }
  ASSERT_TRUE(WaitFor([&] { return updater.Stats().rebuilds_failed >= 1; }));
  // The failed rebuild persisted nothing (and recorded no persist failure:
  // the persist stage was never reached).
  EXPECT_EQ(updater.Stats().snapshots_persisted, persisted_baseline);
  EXPECT_EQ(updater.Stats().snapshot_persist_failures, 0u);

  // Heal: the recovery rebuild publishes and persists again.
  imputer.fail.store(false, std::memory_order_release);
  for (int i = 0; i < 4; ++i) {
    updater.Ingest(victim, ObservationLike(shards[0].map, 200.0 + i));
  }
  ASSERT_TRUE(WaitFor([&] {
    return updater.Stats().snapshots_persisted >= persisted_baseline + 1;
  })) << "healed rebuild never persisted";
  // Strand two post-heal observations in the WAL: below the volume
  // trigger, so no rebuild folds them before the "crash".
  for (int i = 0; i < 2; ++i) {
    updater.Ingest(victim, ObservationLike(shards[0].map, 300.0 + i));
  }
  updater.Stop();
  const uint64_t served_version = store.Current(victim)->version;

  // Restart over the same durable state: the victim restores the healed
  // snapshot and the stranded deltas replay from the WAL.
  {
    ShardedSnapshotStore store2;
    MapUpdater restarted(&store2, &differentiator, &imputer, WknnFactory(),
                         opt);
    for (const VenueShard& shard : shards) {
      restarted.RegisterShard(shard.id, shard.map);
    }
    const MapUpdaterStats stats = restarted.Stats();
    EXPECT_EQ(stats.shards_restored, shards.size());
    EXPECT_EQ(stats.wal_records_replayed, 2u);
    EXPECT_EQ(restarted.PendingObservations(victim), 2u);
    EXPECT_EQ(store2.Current(victim)->version, served_version);
  }
}

TEST(UpdaterFaultTest, HangingImputerStallsTheRebuildNotServingOrIngest) {
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 2;
  const auto shards = MakeSyntheticVenue(vopt);

  ShardedSnapshotStore store;
  ShardRouter router(&store, 1);
  cluster::MarOnlyDifferentiator differentiator;
  HangingImputer imputer;
  MapUpdaterOptions opt;
  opt.min_new_observations = 4;
  opt.poll_interval_ms = 1.0;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);
  for (const VenueShard& shard : shards) {
    updater.RegisterShard(shard.id, shard.map);
  }
  const rmap::ShardId stuck = shards[0].id;
  const rmap::ShardId healthy = shards[1].id;

  updater.Start();
  imputer.armed.store(true, std::memory_order_release);
  for (int i = 0; i < 4; ++i) {
    updater.Ingest(stuck, ObservationLike(shards[0].map, 100.0 + i));
  }
  ASSERT_TRUE(WaitFor([&] { return imputer.entered.load() >= 1; }))
      << "rebuild never reached the imputer";

  // The rebuild is wedged inside the imputer, but the serving plane is
  // not: both shards answer from their published snapshots and ingest
  // keeps buffering.
  EXPECT_EQ(store.Current(stuck)->version, 1u);
  const la::Matrix& refs = store.Current(healthy)->fingerprints();
  std::vector<double> query(refs.cols());
  for (size_t j = 0; j < refs.cols(); ++j) query[j] = refs(0, j);
  EXPECT_NO_THROW(router.Localize(stuck, query));
  EXPECT_NO_THROW(router.Localize(healthy, query));
  for (int i = 0; i < 3; ++i) {
    updater.Ingest(healthy, ObservationLike(shards[1].map, 300.0 + i));
  }
  EXPECT_EQ(updater.PendingObservations(healthy), 3u);

  // Release the imputer: the wedged rebuild publishes, the loop resumes,
  // and Stop() drains with nothing left hanging.
  imputer.armed.store(false, std::memory_order_release);
  imputer.Release();
  ASSERT_TRUE(WaitFor([&] { return store.Current(stuck)->version >= 2; }));
  updater.Stop();
  EXPECT_EQ(updater.Stats().rebuilds_failed, 0u);
}

}  // namespace
}  // namespace rmi::serving
