// Soak-scenario coverage: a miniature end-to-end soak through RunSoak,
// hysteretic session routing on floor-boundary fingerprints (no classify
// flapping), handover along a real walker crossing, dimension-changing
// republish with queries in flight (clean rejects, never torn state — this
// suite runs under the CI TSan job), and a Bluetooth-only shard serving
// sparse scans. The full-scale soak case is excluded from tier-1 by the
// "soak" ctest label and gated on RMI_SOAK_TESTS=1 (the CI soak job sets
// it).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "clustering/differentiation.h"
#include "common/missing.h"
#include "common/rng.h"
#include "imputers/traditional.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/shard_router.h"
#include "workload/session.h"
#include "workload/soak.h"
#include "workload/trace.h"

namespace rmi::workload {
namespace {

serving::EstimatorFactory WknnFactory() {
  return [] { return std::make_unique<positioning::KnnEstimator>(5, true); };
}

/// A registered-and-serving stack over `venue`: every shard published.
struct Stack {
  serving::ShardedSnapshotStore store;
  serving::ShardRouter router{&store, 2};
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;
  serving::MapUpdater updater{&store, &differentiator, &imputer,
                              WknnFactory()};

  explicit Stack(const SoakVenue& venue) {
    for (const serving::VenueShard& shard : venue.shards) {
      updater.RegisterShard(shard.id, shard.map);
    }
  }
};

SoakVenueOptions TinyVenueOptions() {
  SoakVenueOptions opt;
  opt.num_buildings = 2;
  opt.floors_per_building = 2;
  opt.bluetooth_floors = 1;
  return opt;
}

TEST(SoakTest, TinySoakEndToEndWithChurn) {
  SoakOptions opt;
  opt.venue = TinyVenueOptions();
  opt.walkers.num_walkers = 32;
  opt.walkers.duration_s = 20.0;
  opt.arrivals.duration_s = 20.0;
  opt.arrivals.expected_total = 3000.0;
  opt.time_scale = 20.0;  // ~1 s of wall pacing
  opt.client_threads = 2;
  opt.churn.resurvey_shards = 2;

  const SoakReport report = RunSoak(opt);
  EXPECT_EQ(report.sent, report.scheduled);
  EXPECT_GT(report.ok, report.sent * 9 / 10);
  EXPECT_EQ(report.rebuild_failures, 0u);
  EXPECT_EQ(report.dimension_changes, 2u);
  EXPECT_GT(report.rebuilds_completed, 0u);
  EXPECT_GT(report.publishes, 0u);
  EXPECT_GT(report.achieved_qps, 0.0);
  EXPECT_GT(report.p99_ms, 0.0);
  EXPECT_GE(report.p999_ms, report.p99_ms);
  EXPECT_GE(report.p99_ms, report.p50_ms);
  EXPECT_LT(report.handover_error_rate, 0.2);
  EXPECT_GT(report.staleness_p95_ms, 0.0);  // resurvey churn was rebuilt
  EXPECT_EQ(report.num_shards, 4u);
}

TEST(SessionRouterTest, BoundaryFingerprintsDoNotFlap) {
  // Two floors of one building; the scan alternates between a floor-0 and
  // a slightly-different floor-1-looking mix whose overlap advantage never
  // reaches the hysteresis margin. A stateless classifier would flap; the
  // session must hold its shard with zero switches.
  SoakVenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 2;
  vopt.bluetooth_floors = 0;
  const SoakVenue venue = MakeSoakVenue(vopt);
  Stack stack(venue);

  SessionRoutingOptions sopt;
  sopt.overlap_margin = 2;
  sopt.confirm_count = 2;
  SessionRouter session(&stack.store, &stack.router, sopt);

  // Adopt floor 0 from a clean center-of-floor scan.
  TraceKey truth;
  truth.shard = venue.shards[0].id;
  truth.pos = {5.0, 4.0};
  Rng rng(3);
  FingerprintOptions fopt;
  fopt.drop_rate = 0.0;
  const auto home = SynthesizeFingerprint(venue, truth, 0.0, fopt, rng);
  auto hint = session.Route(home);
  ASSERT_TRUE(hint.has_value());
  ASSERT_EQ(*hint, venue.shards[0].id);

  // Boundary scans: floor 0's scan plus one or two floor-1 APs (the
  // stairwell bleed) — the challenger's advantage stays under the margin.
  const auto profile0 = stack.store.Profile(venue.shards[0].id);
  const auto profile1 = stack.store.Profile(venue.shards[1].id);
  ASSERT_NE(profile0, nullptr);
  ASSERT_NE(profile1, nullptr);
  for (int i = 0; i < 50; ++i) {
    auto boundary = home;
    // Flip one AP exclusive to floor 1 audible, alternating which one, so
    // the raw vote wobbles scan to scan.
    size_t flipped = 0;
    for (size_t ap = 0; ap < boundary.size() && flipped < 1u + (i % 2);
         ++ap) {
      if (profile1->observable[ap] && !profile0->observable[ap] &&
          IsNull(boundary[ap])) {
        boundary[ap] = -60.0;
        ++flipped;
      }
    }
    hint = session.Route(boundary);
    ASSERT_TRUE(hint.has_value());
    EXPECT_EQ(*hint, venue.shards[0].id) << "flapped on scan " << i;
  }
  EXPECT_EQ(session.switches(), 0u);

  // A genuine floor change clears the margin and completes after
  // confirm_count decisive scans.
  TraceKey upstairs;
  upstairs.shard = venue.shards[1].id;
  upstairs.pos = {5.0, 4.0};
  for (int i = 0; i < 3; ++i) {
    const auto scan = SynthesizeFingerprint(venue, upstairs, 0.0, fopt, rng);
    hint = session.Route(scan);
    ASSERT_TRUE(hint.has_value());
  }
  EXPECT_EQ(*hint, venue.shards[1].id);
  EXPECT_EQ(session.switches(), 1u);
}

TEST(SessionRouterTest, FollowsAWalkerAcrossFloorsWithoutFlapping) {
  SoakVenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 3;
  vopt.bluetooth_floors = 0;
  const SoakVenue venue = MakeSoakVenue(vopt);
  Stack stack(venue);

  WalkerOptions wopt;
  wopt.num_walkers = 24;
  wopt.floor_change_probability = 0.4;  // make crossings likely
  const auto walkers = GenerateWalkers(venue, wopt);
  const WalkerTrace* crossing = nullptr;
  for (const WalkerTrace& walker : walkers) {
    if (walker.FloorTransitions() > 0) {
      crossing = &walker;
      break;
    }
  }
  ASSERT_NE(crossing, nullptr) << "no walker crossed floors";

  SessionRouter session(&stack.store, &stack.router, {});
  Rng rng(11);
  FingerprintOptions fopt;
  size_t correct = 0, total = 0;
  const double span = crossing->end_s - crossing->start_s;
  for (int i = 0; i <= 400; ++i) {
    const double t = crossing->start_s + span * i / 400.0;
    const TraceKey truth = crossing->At(t);
    const auto scan = SynthesizeFingerprint(venue, truth,
                                            crossing->device_bias_db, fopt,
                                            rng);
    const auto hint = session.Route(scan);
    ASSERT_TRUE(hint.has_value());
    ++total;
    if (*hint == truth.shard) ++correct;
  }
  // The session tracks the walker: right shard almost always (hysteresis
  // lags a couple of scans per crossing), and it never flaps — switches
  // stay in the same ballpark as true transitions.
  EXPECT_GT(double(correct) / double(total), 0.9);
  EXPECT_LE(session.switches(), 2 * crossing->FloorTransitions() + 1);
}

TEST(SoakChurnTest, DimensionChangeRepublishNeverTearsInFlightQueries) {
  // Clients hammer old-width scans while every shard is re-registered at
  // D + 2 and the venue swaps; every query either answers or throws a
  // clean runtime_error (validation reject) — never a crash, never a torn
  // read. This is a designated TSan scenario.
  SoakVenueOptions vopt;
  vopt.num_buildings = 2;
  vopt.floors_per_building = 2;
  vopt.bluetooth_floors = 0;
  const SoakVenue venue = MakeSoakVenue(vopt);
  Stack stack(venue);
  const SoakVenue widened = AddGlobalAps(venue, 2, 23);

  std::atomic<bool> stop{false};
  std::atomic<size_t> answered{0}, rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      WalkerOptions wopt;
      wopt.num_walkers = 4;
      const auto walkers = GenerateWalkers(venue, wopt);
      FingerprintOptions fopt;
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const WalkerTrace& walker = walkers[i++ % walkers.size()];
        const TraceKey truth =
            walker.At(walker.start_s + double(i % 97) / 97.0 *
                                           (walker.end_s - walker.start_s));
        // Alternate widths: old-width scans race the republish, new-width
        // scans race the not-yet-republished shards.
        const SoakVenue& gen = (i % 2 == 0) ? venue : widened;
        const auto scan = SynthesizeFingerprint(gen, truth,
                                                walker.device_bias_db, fopt,
                                                rng);
        try {
          stack.router.LocalizeAuto(scan);
          answered.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::runtime_error&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Republish every shard at the widened dimension, then back, while the
  // clients run.
  for (int round = 0; round < 2; ++round) {
    const SoakVenue& target = (round == 0) ? widened : venue;
    for (const serving::VenueShard& shard : target.shards) {
      stack.updater.RegisterShard(shard.id, shard.map);
    }
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_GT(answered.load(), 0u);
  // 4 shards x (initial + 2 republish rounds) publishes.
  EXPECT_EQ(stack.store.publish_count(), 12u);
  // Post-churn, the original width serves everywhere again.
  Rng rng(5);
  WalkerOptions wopt;
  wopt.num_walkers = 2;
  const auto walkers = GenerateWalkers(venue, wopt);
  const TraceKey truth = walkers[0].At(walkers[0].start_s);
  const auto scan = SynthesizeFingerprint(venue, truth, 0.0, {}, rng);
  EXPECT_NO_THROW(stack.router.LocalizeAuto(scan));
}

TEST(SoakVenueTest, BluetoothOnlyShardServesItsSparseScans) {
  SoakVenueOptions vopt = TinyVenueOptions();
  const SoakVenue venue = MakeSoakVenue(vopt);
  Stack stack(venue);
  const size_t bt = venue.num_shards() - 1;
  ASSERT_TRUE(venue.bluetooth[bt]);

  Rng rng(13);
  FingerprintOptions fopt;
  fopt.drop_rate = 0.0;
  TraceKey truth;
  truth.shard = venue.shards[bt].id;
  for (int x = 1; x < int(vopt.nx); x += 3) {
    for (int y = 1; y < int(vopt.ny); y += 3) {
      truth.pos = {double(x), double(y)};
      const auto scan = SynthesizeFingerprint(venue, truth, 0.0, fopt, rng);
      const auto result = stack.router.LocalizeAuto(scan);
      EXPECT_EQ(result.route.shard, venue.shards[bt].id);
    }
  }
}

TEST(SoakTest, SoakAtScale) {
  const char* enabled = std::getenv("RMI_SOAK_TESTS");
  if (enabled == nullptr || std::strcmp(enabled, "1") != 0) {
    GTEST_SKIP() << "set RMI_SOAK_TESTS=1 to run the at-scale soak";
  }
  // Scaled-down CI smoke of the full acceptance soak: the real venue
  // scale (50 shards) with a shorter timeline.
  SoakOptions opt;
  opt.walkers.num_walkers = 256;
  opt.walkers.duration_s = 60.0;
  opt.arrivals.duration_s = 60.0;
  opt.arrivals.expected_total = 120000.0;
  opt.time_scale = 6.0;  // ~10 s of wall pacing
  const SoakReport report = RunSoak(opt);
  EXPECT_EQ(report.num_shards, 50u);
  EXPECT_EQ(report.sent, report.scheduled);
  EXPECT_GT(report.ok, report.sent * 9 / 10);
  EXPECT_EQ(report.rebuild_failures, 0u);
  EXPECT_EQ(report.dimension_changes, 2u);
  EXPECT_LT(report.handover_error_rate, 0.1);
}

}  // namespace
}  // namespace rmi::workload
