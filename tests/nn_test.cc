#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/optimizer.h"
#include "nn/layers.h"

namespace rmi::nn {
namespace {

using ad::Tensor;

TEST(XavierInitTest, BoundsScaleWithFanInOut) {
  Rng rng(1);
  la::Matrix w = XavierInit(100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  EXPECT_LE(w.MaxAbs(), bound + 1e-12);
  EXPECT_GT(w.MaxAbs(), bound * 0.5);  // actually fills the range
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(2);
  Linear l(3, 2, rng);
  Tensor x = Tensor::Constant(la::Matrix{{1, 0, 0}});
  Tensor y = l.Forward(x);
  EXPECT_EQ(y.rows(), 1u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_EQ(l.Params().size(), 2u);
}

TEST(LinearTest, LearnsLinearMap) {
  Rng rng(3);
  Linear l(2, 1, rng);
  ad::Adam opt(l.Params(), 0.05);
  for (int i = 0; i < 400; ++i) {
    la::Matrix xv = la::Matrix::Random(1, 2, rng);
    const double target = 3.0 * xv(0, 0) - 2.0 * xv(0, 1) + 0.5;
    Tensor loss = ad::Mse(l.Forward(Tensor::Constant(xv)),
                          Tensor::Constant(la::Matrix(1, 1, target)));
    loss.Backward();
    opt.Step();
  }
  la::Matrix probe{{1.0, 1.0}};
  const double pred = l.Forward(Tensor::Constant(probe)).value()(0, 0);
  EXPECT_NEAR(pred, 1.5, 0.1);
}

TEST(LstmCellTest, ShapesAndState) {
  Rng rng(4);
  LstmCell cell(3, 5, rng);
  auto st = cell.InitialState();
  EXPECT_EQ(st.h.cols(), 5u);
  auto next = cell.Forward(Tensor::Constant(la::Matrix(1, 3, 0.5)), st);
  EXPECT_EQ(next.h.cols(), 5u);
  EXPECT_EQ(next.c.cols(), 5u);
  EXPECT_TRUE(next.h.value().AllFinite());
  // Hidden output of LSTM is bounded by tanh.
  EXPECT_LE(next.h.value().MaxAbs(), 1.0);
}

TEST(LstmCellTest, StateEvolves) {
  Rng rng(5);
  LstmCell cell(2, 4, rng);
  auto st = cell.InitialState();
  auto s1 = cell.Forward(Tensor::Constant(la::Matrix(1, 2, 1.0)), st);
  auto s2 = cell.Forward(Tensor::Constant(la::Matrix(1, 2, 1.0)), s1);
  EXPECT_GT(la::Matrix::MaxAbsDiff(s1.h.value(), s2.h.value()), 1e-9);
}

TEST(LstmCellTest, LearnsToRememberFirstInput) {
  // Task: output after 3 steps should equal the first step's input sign.
  Rng rng(6);
  LstmCell cell(1, 8, rng);
  Linear head(8, 1, rng);
  std::vector<Tensor> params = cell.Params();
  AppendParams(&params, head.Params());
  ad::Adam opt(params, 0.02);
  double final_loss = 0.0;
  for (int iter = 0; iter < 600; ++iter) {
    const double v = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    auto st = cell.InitialState();
    st = cell.Forward(Tensor::Constant(la::Matrix(1, 1, v)), st);
    st = cell.Forward(Tensor::Constant(la::Matrix(1, 1, 0.0)), st);
    st = cell.Forward(Tensor::Constant(la::Matrix(1, 1, 0.0)), st);
    Tensor pred = head.Forward(st.h);
    Tensor loss = ad::Mse(pred, Tensor::Constant(la::Matrix(1, 1, v)));
    final_loss = loss.value()(0, 0);
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(final_loss, 0.3);
}

TEST(GruCellTest, ShapesAndBoundedOutput) {
  Rng rng(7);
  GruCell cell(3, 6, rng);
  Tensor h = cell.InitialState();
  h = cell.Forward(Tensor::Constant(la::Matrix(1, 3, 2.0)), h);
  EXPECT_EQ(h.cols(), 6u);
  EXPECT_LE(h.value().MaxAbs(), 1.0);  // convex combo of tanh and 0 state
  EXPECT_EQ(cell.Params().size(), 6u);
}

TEST(GruCellTest, GradientsReachParameters) {
  Rng rng(8);
  GruCell cell(2, 3, rng);
  Tensor h = cell.InitialState();
  h = cell.Forward(Tensor::Constant(la::Matrix(1, 2, 1.0)), h);
  h = cell.Forward(Tensor::Constant(la::Matrix(1, 2, -1.0)), h);
  ad::Sum(h).Backward();
  double total = 0;
  for (const Tensor& p : cell.Params()) total += p.grad().MaxAbs();
  EXPECT_GT(total, 0.0);
}

TEST(MlpTest, ForwardShapeAndParams) {
  Rng rng(9);
  Mlp mlp({4, 8, 2}, rng);
  Tensor y = mlp.Forward(Tensor::Constant(la::Matrix(1, 4, 0.1)));
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_EQ(mlp.Params().size(), 4u);  // 2 layers x (w, b)
}

TEST(MlpTest, LearnsXor) {
  Rng rng(10);
  Mlp mlp({2, 12, 1}, rng);
  ad::Adam opt(mlp.Params(), 0.03);
  const double xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const double ys[4] = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 1500; ++epoch) {
    const int i = epoch % 4;
    Tensor x = Tensor::Constant(la::Matrix{{xs[i][0], xs[i][1]}});
    Tensor loss = ad::Mse(mlp.Forward(x),
                          Tensor::Constant(la::Matrix(1, 1, ys[i])));
    loss.Backward();
    opt.Step();
  }
  for (int i = 0; i < 4; ++i) {
    Tensor x = Tensor::Constant(la::Matrix{{xs[i][0], xs[i][1]}});
    const double pred = mlp.Forward(x).value()(0, 0);
    EXPECT_NEAR(pred, ys[i], 0.3) << "case " << i;
  }
}

}  // namespace
}  // namespace rmi::nn
