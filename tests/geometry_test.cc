#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/geometry.h"

namespace rmi::geom {
namespace {

TEST(PointTest, ArithmeticAndDistance) {
  Point a{1, 2}, b{4, 6};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  Point c = a + b;
  EXPECT_DOUBLE_EQ(c.x, 5);
  Point d = (b - a) * 0.5;
  EXPECT_DOUBLE_EQ(d.y, 2);
}

TEST(CrossTest, Orientation) {
  EXPECT_GT(Cross({0, 0}, {1, 0}, {0, 1}), 0);  // left turn
  EXPECT_LT(Cross({0, 0}, {1, 0}, {0, -1}), 0); // right turn
  EXPECT_DOUBLE_EQ(Cross({0, 0}, {1, 1}, {2, 2}), 0);  // collinear
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
}

TEST(SegmentsIntersectTest, Disjoint) {
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
}

TEST(SegmentsIntersectTest, SharedEndpointCounts) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}));
}

TEST(SegmentsIntersectTest, CollinearDisjoint) {
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(SegmentsIntersectTest, TTouch) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 0}}, {{1, 0}, {1, 5}}));
}

TEST(PolygonTest, AreaAndCentroid) {
  Polygon p = Polygon::Rectangle(0, 0, 4, 2);
  EXPECT_DOUBLE_EQ(p.Area(), 8.0);
  EXPECT_DOUBLE_EQ(p.SignedArea(), 8.0);  // CCW construction
  Point c = p.Centroid();
  EXPECT_DOUBLE_EQ(c.x, 2.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

TEST(PolygonTest, ContainsInteriorExteriorBoundary) {
  Polygon p = Polygon::Rectangle(0, 0, 2, 2);
  EXPECT_TRUE(p.Contains({1, 1}));
  EXPECT_FALSE(p.Contains({3, 1}));
  EXPECT_FALSE(p.Contains({-0.1, 1}));
  EXPECT_TRUE(p.Contains({0, 1}));   // boundary counts as inside
  EXPECT_TRUE(p.Contains({2, 2}));   // corner
}

TEST(PolygonTest, ContainsNonConvex) {
  // L-shape.
  Polygon p({{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}});
  EXPECT_TRUE(p.Contains({0.5, 2.5}));
  EXPECT_TRUE(p.Contains({2.5, 0.5}));
  EXPECT_FALSE(p.Contains({2.5, 2.5}));
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  std::vector<Point> pts = {{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}, {0.5, 0.5}};
  Polygon hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(hull.Area(), 4.0);
}

TEST(ConvexHullTest, CollinearInput) {
  Polygon hull = ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_LE(hull.size(), 2u);
}

TEST(ConvexHullTest, DegenerateSinglePoint) {
  Polygon hull = ConvexHull({{5, 5}, {5, 5}});
  EXPECT_EQ(hull.size(), 1u);
}

TEST(ConvexHullTest, HullContainsAllInputs) {
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  Polygon hull = ConvexHull(pts);
  for (const Point& p : pts) EXPECT_TRUE(hull.Contains(p));
}

TEST(ConvexHullTest, HullIsCounterClockwise) {
  Rng rng(4);
  std::vector<Point> pts;
  for (int i = 0; i < 30; ++i) pts.push_back({rng.Uniform(), rng.Uniform()});
  Polygon hull = ConvexHull(pts);
  EXPECT_GT(hull.SignedArea(), 0.0);
}

TEST(MultiPolygonTest, ContainsAny) {
  MultiPolygon mp({Polygon::Rectangle(0, 0, 1, 1), Polygon::Rectangle(5, 5, 6, 6)});
  EXPECT_TRUE(mp.Contains({0.5, 0.5}));
  EXPECT_TRUE(mp.Contains({5.5, 5.5}));
  EXPECT_FALSE(mp.Contains({3, 3}));
}

TEST(MultiPolygonTest, CountEdgeCrossings) {
  MultiPolygon mp({Polygon::Rectangle(1, 0, 2, 10)});  // vertical slab
  // Segment passing through the slab crosses 2 edges.
  EXPECT_EQ(mp.CountEdgeCrossings({{0, 5}, {3, 5}}), 2);
  // Segment ending inside crosses 1.
  EXPECT_EQ(mp.CountEdgeCrossings({{0, 5}, {1.5, 5}}), 1);
  // Disjoint segment crosses 0.
  EXPECT_EQ(mp.CountEdgeCrossings({{0, 20}, {3, 20}}), 0);
}

TEST(PolygonsIntersectTest, OverlappingRectangles) {
  EXPECT_TRUE(PolygonsIntersect(Polygon::Rectangle(0, 0, 2, 2),
                                Polygon::Rectangle(1, 1, 3, 3)));
}

TEST(PolygonsIntersectTest, DisjointRectangles) {
  EXPECT_FALSE(PolygonsIntersect(Polygon::Rectangle(0, 0, 1, 1),
                                 Polygon::Rectangle(2, 2, 3, 3)));
}

TEST(PolygonsIntersectTest, ContainmentEitherWay) {
  Polygon outer = Polygon::Rectangle(0, 0, 10, 10);
  Polygon inner = Polygon::Rectangle(4, 4, 5, 5);
  EXPECT_TRUE(PolygonsIntersect(outer, inner));
  EXPECT_TRUE(PolygonsIntersect(inner, outer));
}

TEST(PolygonsIntersectTest, TouchingEdges) {
  EXPECT_TRUE(PolygonsIntersect(Polygon::Rectangle(0, 0, 1, 1),
                                Polygon::Rectangle(1, 0, 2, 1)));
}

TEST(IntersectsAnyTest, EntityExistSemantics) {
  // A hull spanning across a wall intersects it; a hull inside an open
  // area does not (Algorithm 4's intended predicate).
  MultiPolygon walls({Polygon::Rectangle(4.9, 0, 5.1, 10)});  // thin wall
  Polygon crossing = ConvexHull({{4, 1}, {6, 1}, {4, 2}, {6, 2}});
  EXPECT_TRUE(IntersectsAny(crossing, walls));
  Polygon inside = ConvexHull({{1, 1}, {3, 1}, {1, 3}, {3, 3}});
  EXPECT_FALSE(IntersectsAny(inside, walls));
}

// Property sweep: random segment pairs agree with a brute-force parametric
// intersection oracle (for non-collinear proper cases).
class SegmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SegmentPropertyTest, MatchesParametricOracle) {
  Rng rng(500 + GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Segment s1{{rng.Uniform(0, 10), rng.Uniform(0, 10)},
               {rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    Segment s2{{rng.Uniform(0, 10), rng.Uniform(0, 10)},
               {rng.Uniform(0, 10), rng.Uniform(0, 10)}};
    const double d1x = s1.b.x - s1.a.x, d1y = s1.b.y - s1.a.y;
    const double d2x = s2.b.x - s2.a.x, d2y = s2.b.y - s2.a.y;
    const double denom = d1x * d2y - d1y * d2x;
    if (std::fabs(denom) < 1e-9) continue;  // near-parallel: skip oracle
    const double t = ((s2.a.x - s1.a.x) * d2y - (s2.a.y - s1.a.y) * d2x) / denom;
    const double u = ((s2.a.x - s1.a.x) * d1y - (s2.a.y - s1.a.y) * d1x) / denom;
    const bool oracle = t >= 0 && t <= 1 && u >= 0 && u <= 1;
    // Skip borderline cases where the oracle itself is ill-conditioned.
    if (std::min({std::fabs(t), std::fabs(1 - t), std::fabs(u), std::fabs(1 - u)}) < 1e-6) continue;
    EXPECT_EQ(SegmentsIntersect(s1, s2), oracle)
        << "t=" << t << " u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentPropertyTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace rmi::geom
