#include <gtest/gtest.h>

#include "eval/factories.h"
#include "eval/metrics.h"
#include "eval/pipeline.h"
#include "imputers/traditional.h"
#include "survey/survey.h"

namespace rmi::eval {
namespace {

TEST(MetricsTest, ApeBasic) {
  std::vector<geom::Point> est = {{0, 0}, {3, 4}};
  std::vector<geom::Point> truth = {{0, 0}, {0, 0}};
  EXPECT_DOUBLE_EQ(AveragePositioningError(est, truth), 2.5);
  EXPECT_DOUBLE_EQ(AveragePositioningError({}, {}), 0.0);
}

TEST(MetricsTest, RssiMaeOverRemovedCells) {
  rmap::RadioMap map(2);
  rmap::Record r;
  r.rssi = {-50, -60};
  r.has_rp = true;
  r.rp = {1, 1};
  map.Add(r);
  std::vector<rmap::RemovedRssi> removed = {{0, 0, -54.0}, {0, 1, -58.0}};
  EXPECT_DOUBLE_EQ(RssiMae(map, removed), 3.0);
  EXPECT_DOUBLE_EQ(RssiMae(map, {}), 0.0);
}

TEST(MetricsTest, RpEuclideanOverRemoved) {
  rmap::RadioMap map(1);
  rmap::Record r;
  r.rssi = {-50};
  r.has_rp = true;
  r.rp = {3, 4};
  map.Add(r);
  std::vector<rmap::RemovedRp> removed = {{0, {0, 0}}};
  EXPECT_DOUBLE_EQ(RpEuclideanError(map, removed), 5.0);
}

TEST(MetricsTest, DeletedRecordsSkipped) {
  rmap::RadioMap map(1);
  rmap::Record r;
  r.rssi = {-50};
  r.has_rp = true;
  r.rp = {0, 0};
  r.id = 7;  // the only surviving record has id 7
  map.Add(r);
  std::vector<rmap::RemovedRssi> removed = {{3, 0, -60.0}, {7, 0, -52.0}};
  EXPECT_DOUBLE_EQ(RssiMae(map, removed), 2.0);  // id 3 skipped
}

TEST(BenchEnvTest, DefaultsWithoutEnv) {
  unsetenv("RMI_BENCH_SCALE");
  unsetenv("RMI_BENCH_EPOCHS");
  const BenchEnv env = BenchEnv::FromEnv();
  EXPECT_GT(env.scale, 0.0);
  EXPECT_GT(env.epochs, 0u);
}

TEST(BenchEnvTest, ReadsOverrides) {
  setenv("RMI_BENCH_SCALE", "0.5", 1);
  setenv("RMI_BENCH_EPOCHS", "7", 1);
  const BenchEnv env = BenchEnv::FromEnv();
  EXPECT_DOUBLE_EQ(env.scale, 0.5);
  EXPECT_EQ(env.epochs, 7u);
  unsetenv("RMI_BENCH_SCALE");
  unsetenv("RMI_BENCH_EPOCHS");
}

class FactoriesTest : public ::testing::Test {
 protected:
  FactoriesTest() : ds_(survey::MakeKaideDataset(/*scale=*/0.04)) {}
  survey::SurveyDataset ds_;
  BenchEnv env_;
};

TEST_F(FactoriesTest, AllDifferentiatorNames) {
  for (const char* name :
       {"TopoAC", "DasaKM", "ElbowKM", "DBSCAN", "MAR-only", "MNAR-only"}) {
    auto d = MakeDifferentiator(name, &ds_.venue);
    ASSERT_NE(d, nullptr) << name;
    EXPECT_EQ(d->name(), name);
  }
}

TEST_F(FactoriesTest, AllImputerNames) {
  for (const char* name :
       {"CD", "LI", "SL", "MICE", "MF", "BRITS", "SSGAN", "BiSIM"}) {
    auto im = MakeImputer(name, ds_.venue, env_);
    ASSERT_NE(im, nullptr) << name;
    EXPECT_EQ(im->name(), name);
  }
}

TEST_F(FactoriesTest, AllEstimatorNames) {
  for (const char* name : {"KNN", "WKNN", "RF"}) {
    auto e = MakeEstimator(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_EQ(e->name(), name);
  }
}

TEST_F(FactoriesTest, DefaultBiSimConfigScalesLocation) {
  const auto cfg = DefaultBiSimConfig(ds_.venue, env_);
  EXPECT_NEAR(cfg.loc_scale * std::max(ds_.venue.width, ds_.venue.height),
              1.0, 1e-12);
  EXPECT_EQ(cfg.epochs, env_.epochs);
}

TEST(PipelineTest, EndToEndWithTraditionalImputer) {
  const auto ds = survey::MakeKaideDataset(/*scale=*/0.04);
  auto diff = MakeDifferentiator("MNAR-only", &ds.venue);
  imputers::LinearInterpolationImputer li;
  positioning::KnnEstimator wknn(3, true);
  PipelineOptions opt;
  opt.seed = 42;
  const PipelineResult res = RunPipeline(ds.map, *diff, li, wknn, opt);
  EXPECT_GT(res.num_test, 0u);
  EXPECT_GT(res.ape, 0.0);
  EXPECT_LT(res.ape, ds.venue.width);  // sane scale
  EXPECT_GT(res.impute_seconds, 0.0);
}

TEST(PipelineTest, DeterministicForSeed) {
  const auto ds = survey::MakeKaideDataset(/*scale=*/0.04);
  auto diff = MakeDifferentiator("MAR-only", &ds.venue);
  imputers::LinearInterpolationImputer li;
  positioning::KnnEstimator knn(3, false);
  PipelineOptions opt;
  opt.seed = 7;
  const double a = RunPipeline(ds.map, *diff, li, knn, opt).ape;
  const double b = RunPipeline(ds.map, *diff, li, knn, opt).ape;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(PipelineTest, CaseDeletionHandlesDeletedTestRecords) {
  const auto ds = survey::MakeKaideDataset(/*scale=*/0.04);
  auto diff = MakeDifferentiator("MNAR-only", &ds.venue);
  imputers::CaseDeletionImputer cd;
  positioning::KnnEstimator wknn(3, true);
  PipelineOptions opt;
  opt.seed = 13;
  const PipelineResult res = RunPipeline(ds.map, *diff, cd, wknn, opt);
  EXPECT_GT(res.ape, 0.0);  // must not crash; falls back to -100 fill
}

TEST(PipelineTest, DifferentiateAndImputeReportsMarShare) {
  const auto ds = survey::MakeKaideDataset(/*scale=*/0.04);
  auto diff = MakeDifferentiator("TopoAC", &ds.venue);
  imputers::LinearInterpolationImputer li;
  Rng rng(3);
  double share = -1.0;
  const auto imputed = DifferentiateAndImpute(ds.map, *diff, li, rng, &share);
  EXPECT_GE(share, 0.0);
  EXPECT_LT(share, 0.6);
  EXPECT_EQ(imputed.size(), ds.map.size());
}

TEST(BetaExperimentTest, ReportsBothErrors) {
  const auto ds = survey::MakeKaideDataset(/*scale=*/0.04);
  auto diff = MakeDifferentiator("MNAR-only", &ds.venue);
  imputers::LinearInterpolationImputer li;
  const auto res =
      RunBetaExperiment(ds.map, *diff, li, /*beta_rssi=*/0.2, /*beta_rp=*/0.2,
                        /*seed=*/5);
  EXPECT_GT(res.rssi_mae, 0.0);
  EXPECT_GT(res.rp_euclidean, 0.0);
  EXPECT_LT(res.rp_euclidean, ds.venue.width);
}

TEST(BetaExperimentTest, MoreRemovalHurtsLi) {
  const auto ds = survey::MakeKaideDataset(/*scale=*/0.04);
  auto diff = MakeDifferentiator("MNAR-only", &ds.venue);
  imputers::LinearInterpolationImputer li;
  const double e10 =
      RunBetaExperiment(ds.map, *diff, li, 0.0, 0.1, 5).rp_euclidean;
  const double e50 =
      RunBetaExperiment(ds.map, *diff, li, 0.0, 0.5, 5).rp_euclidean;
  EXPECT_LT(e10, e50 * 1.5);  // loose monotonicity
}

}  // namespace
}  // namespace rmi::eval
