#include <gtest/gtest.h>

#include "common/missing.h"
#include "radiomap/radio_map.h"

namespace rmi::rmap {
namespace {

Record MakeRecord(std::vector<double> rssi, bool has_rp, geom::Point rp,
                  double time, size_t path = 0) {
  Record r;
  r.rssi = std::move(rssi);
  r.has_rp = has_rp;
  r.rp = rp;
  r.time = time;
  r.path_id = path;
  return r;
}

TEST(RadioMapTest, AddAssignsStableIds) {
  RadioMap m(2);
  m.Add(MakeRecord({kNull, -50}, true, {1, 1}, 0));
  m.Add(MakeRecord({-60, kNull}, false, {}, 1));
  EXPECT_EQ(m.record(0).id, 0u);
  EXPECT_EQ(m.record(1).id, 1u);
  // Copy preserves ids; re-adding an identified record keeps its id.
  RadioMap copy(2);
  copy.Add(m.record(1));
  EXPECT_EQ(copy.record(0).id, 1u);
}

TEST(RadioMapTest, MissingRates) {
  RadioMap m(2);
  m.Add(MakeRecord({kNull, -50}, true, {1, 1}, 0));
  m.Add(MakeRecord({kNull, kNull}, false, {}, 1));
  EXPECT_DOUBLE_EQ(m.MissingRssiRate(), 0.75);
  EXPECT_DOUBLE_EQ(m.MissingRpRate(), 0.5);
}

TEST(RadioMapTest, NumObserved) {
  Record r = MakeRecord({-10, kNull, -20}, false, {}, 0);
  EXPECT_EQ(r.NumObserved(), 2u);
}

TEST(RadioMapTest, PathSequencesGroupAndSort) {
  RadioMap m(1);
  m.Add(MakeRecord({-1}, false, {}, 5.0, /*path=*/1));
  m.Add(MakeRecord({-2}, false, {}, 2.0, /*path=*/0));
  m.Add(MakeRecord({-3}, false, {}, 3.0, /*path=*/1));
  m.Add(MakeRecord({-4}, false, {}, 1.0, /*path=*/0));
  const auto seqs = m.PathSequences();
  ASSERT_EQ(seqs.size(), 2u);
  // Path 0: times 1.0 (idx 3) then 2.0 (idx 1).
  EXPECT_EQ(seqs[0], (std::vector<size_t>{3, 1}));
  // Path 1: times 3.0 (idx 2) then 5.0 (idx 0).
  EXPECT_EQ(seqs[1], (std::vector<size_t>{2, 0}));
}

TEST(RadioMapTest, InterpolatedRpsLinearInTime) {
  RadioMap m(1);
  m.Add(MakeRecord({-1}, true, {0, 0}, 0.0));
  m.Add(MakeRecord({-1}, false, {}, 1.0));
  m.Add(MakeRecord({-1}, false, {}, 3.0));
  m.Add(MakeRecord({-1}, true, {4, 8}, 4.0));
  const auto rps = m.InterpolatedRps();
  EXPECT_DOUBLE_EQ(rps[1].x, 1.0);
  EXPECT_DOUBLE_EQ(rps[1].y, 2.0);
  EXPECT_DOUBLE_EQ(rps[2].x, 3.0);
  EXPECT_DOUBLE_EQ(rps[2].y, 6.0);
}

TEST(RadioMapTest, InterpolatedRpsClampAtEndpoints) {
  RadioMap m(1);
  m.Add(MakeRecord({-1}, false, {}, 0.0));
  m.Add(MakeRecord({-1}, true, {2, 2}, 1.0));
  m.Add(MakeRecord({-1}, false, {}, 2.0));
  const auto rps = m.InterpolatedRps();
  EXPECT_DOUBLE_EQ(rps[0].x, 2.0);  // clamps to first observed
  EXPECT_DOUBLE_EQ(rps[2].x, 2.0);  // clamps to last observed
}

TEST(RadioMapTest, InterpolatedRpsCentroidFallback) {
  RadioMap m(1);
  m.Add(MakeRecord({-1}, true, {2, 0}, 0.0, /*path=*/0));
  m.Add(MakeRecord({-1}, true, {4, 0}, 1.0, /*path=*/0));
  m.Add(MakeRecord({-1}, false, {}, 0.0, /*path=*/1));  // path with no RP
  const auto rps = m.InterpolatedRps();
  EXPECT_DOUBLE_EQ(rps[2].x, 3.0);  // centroid of observed RPs
}

TEST(MaskMatrixTest, SetGetCount) {
  MaskMatrix m(2, 3);
  EXPECT_EQ(m.at(0, 0), MaskValue::kObserved);
  m.set(0, 1, MaskValue::kMar);
  m.set(1, 2, MaskValue::kMnar);
  EXPECT_EQ(m.at(0, 1), MaskValue::kMar);
  EXPECT_EQ(m.at(1, 2), MaskValue::kMnar);
  EXPECT_EQ(m.CountOf(MaskValue::kObserved), 4u);
  EXPECT_EQ(m.CountOf(MaskValue::kMar), 1u);
  EXPECT_EQ(m.CountOf(MaskValue::kMnar), 1u);
}

TEST(MaskMatrixTest, MarShareOfMissing) {
  MaskMatrix m(1, 4);
  m.set(0, 0, MaskValue::kMar);
  m.set(0, 1, MaskValue::kMnar);
  m.set(0, 2, MaskValue::kMnar);
  EXPECT_NEAR(m.MarShareOfMissing(), 1.0 / 3.0, 1e-12);
  MaskMatrix none(1, 1);
  EXPECT_DOUBLE_EQ(none.MarShareOfMissing(), 0.0);
}

TEST(BinarizationTest, Algorithm1) {
  const auto b = Binarization({-70.0, kNull, 0.0, kNull});
  EXPECT_EQ(b, (std::vector<uint8_t>{1, 0, 1, 0}));
}

TEST(RemoveRandomRssisTest, RemovesExactFraction) {
  RadioMap m(4);
  for (int i = 0; i < 25; ++i) {
    m.Add(MakeRecord({-10, -20, -30, -40}, false, {}, i));
  }
  Rng rng(1);
  const auto removed = RemoveRandomRssis(&m, 0.25, rng);
  EXPECT_EQ(removed.size(), 25u);  // 100 observed cells * 0.25
  EXPECT_NEAR(m.MissingRssiRate(), 0.25, 1e-12);
  // Removed values recorded faithfully.
  for (const auto& cell : removed) {
    EXPECT_TRUE(IsNull(m.record(cell.record).rssi[cell.ap]));
    EXPECT_LT(cell.value, 0.0);
  }
}

TEST(RemoveRandomRssisTest, ZeroAndFullRatio) {
  RadioMap m(2);
  m.Add(MakeRecord({-10, -20}, false, {}, 0));
  Rng rng(2);
  EXPECT_TRUE(RemoveRandomRssis(&m, 0.0, rng).empty());
  const auto removed = RemoveRandomRssis(&m, 1.0, rng);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_DOUBLE_EQ(m.MissingRssiRate(), 1.0);
}

TEST(RemoveRandomRpsTest, RemovesAndRecords) {
  RadioMap m(1);
  for (int i = 0; i < 10; ++i) {
    m.Add(MakeRecord({-1}, true, {double(i), 0}, i));
  }
  Rng rng(3);
  const auto removed = RemoveRandomRps(&m, 0.5, rng);
  EXPECT_EQ(removed.size(), 5u);
  EXPECT_DOUBLE_EQ(m.MissingRpRate(), 0.5);
  for (const auto& cell : removed) {
    EXPECT_FALSE(m.record(cell.record).has_rp);
    EXPECT_DOUBLE_EQ(cell.rp.x, static_cast<double>(cell.record));
  }
}

}  // namespace
}  // namespace rmi::rmap
