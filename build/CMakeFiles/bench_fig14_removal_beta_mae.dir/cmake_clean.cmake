file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_removal_beta_mae.dir/bench/bench_fig14_removal_beta_mae.cc.o"
  "CMakeFiles/bench_fig14_removal_beta_mae.dir/bench/bench_fig14_removal_beta_mae.cc.o.d"
  "bench_fig14_removal_beta_mae"
  "bench_fig14_removal_beta_mae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_removal_beta_mae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
