# Empty dependencies file for bench_fig14_removal_beta_mae.
# This may be replaced when dependencies are built.
