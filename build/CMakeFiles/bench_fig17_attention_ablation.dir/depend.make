# Empty dependencies file for bench_fig17_attention_ablation.
# This may be replaced when dependencies are built.
