file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_attention_ablation.dir/bench/bench_fig17_attention_ablation.cc.o"
  "CMakeFiles/bench_fig17_attention_ablation.dir/bench/bench_fig17_attention_ablation.cc.o.d"
  "bench_fig17_attention_ablation"
  "bench_fig17_attention_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_attention_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
