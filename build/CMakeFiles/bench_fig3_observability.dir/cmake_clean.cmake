file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_observability.dir/bench/bench_fig3_observability.cc.o"
  "CMakeFiles/bench_fig3_observability.dir/bench/bench_fig3_observability.cc.o.d"
  "bench_fig3_observability"
  "bench_fig3_observability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
