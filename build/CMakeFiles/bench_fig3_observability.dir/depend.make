# Empty dependencies file for bench_fig3_observability.
# This may be replaced when dependencies are built.
