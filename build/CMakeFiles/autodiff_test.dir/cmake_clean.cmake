file(REMOVE_RECURSE
  "CMakeFiles/autodiff_test.dir/tests/autodiff_test.cc.o"
  "CMakeFiles/autodiff_test.dir/tests/autodiff_test.cc.o.d"
  "autodiff_test"
  "autodiff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
