# Empty dependencies file for imputers_test.
# This may be replaced when dependencies are built.
