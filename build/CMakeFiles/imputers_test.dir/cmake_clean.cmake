file(REMOVE_RECURSE
  "CMakeFiles/imputers_test.dir/tests/imputers_test.cc.o"
  "CMakeFiles/imputers_test.dir/tests/imputers_test.cc.o.d"
  "imputers_test"
  "imputers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imputers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
