file(REMOVE_RECURSE
  "CMakeFiles/clustering_test.dir/tests/clustering_test.cc.o"
  "CMakeFiles/clustering_test.dir/tests/clustering_test.cc.o.d"
  "clustering_test"
  "clustering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
