file(REMOVE_RECURSE
  "CMakeFiles/radio_test.dir/tests/radio_test.cc.o"
  "CMakeFiles/radio_test.dir/tests/radio_test.cc.o.d"
  "radio_test"
  "radio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
