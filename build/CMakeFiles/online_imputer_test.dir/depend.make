# Empty dependencies file for online_imputer_test.
# This may be replaced when dependencies are built.
