file(REMOVE_RECURSE
  "CMakeFiles/online_imputer_test.dir/tests/online_imputer_test.cc.o"
  "CMakeFiles/online_imputer_test.dir/tests/online_imputer_test.cc.o.d"
  "online_imputer_test"
  "online_imputer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_imputer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
