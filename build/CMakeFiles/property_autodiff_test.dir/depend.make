# Empty dependencies file for property_autodiff_test.
# This may be replaced when dependencies are built.
