file(REMOVE_RECURSE
  "CMakeFiles/property_autodiff_test.dir/tests/property_autodiff_test.cc.o"
  "CMakeFiles/property_autodiff_test.dir/tests/property_autodiff_test.cc.o.d"
  "property_autodiff_test"
  "property_autodiff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_autodiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
