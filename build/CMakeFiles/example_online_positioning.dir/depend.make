# Empty dependencies file for example_online_positioning.
# This may be replaced when dependencies are built.
