file(REMOVE_RECURSE
  "CMakeFiles/example_online_positioning.dir/examples/online_positioning.cpp.o"
  "CMakeFiles/example_online_positioning.dir/examples/online_positioning.cpp.o.d"
  "example_online_positioning"
  "example_online_positioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_online_positioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
