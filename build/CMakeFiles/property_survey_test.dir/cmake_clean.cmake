file(REMOVE_RECURSE
  "CMakeFiles/property_survey_test.dir/tests/property_survey_test.cc.o"
  "CMakeFiles/property_survey_test.dir/tests/property_survey_test.cc.o.d"
  "property_survey_test"
  "property_survey_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_survey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
