# Empty dependencies file for property_survey_test.
# This may be replaced when dependencies are built.
