file(REMOVE_RECURSE
  "librmi.a"
)
