
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/optimizer.cc" "CMakeFiles/rmi.dir/src/autodiff/optimizer.cc.o" "gcc" "CMakeFiles/rmi.dir/src/autodiff/optimizer.cc.o.d"
  "/root/repo/src/autodiff/tensor.cc" "CMakeFiles/rmi.dir/src/autodiff/tensor.cc.o" "gcc" "CMakeFiles/rmi.dir/src/autodiff/tensor.cc.o.d"
  "/root/repo/src/autodiff/workspace.cc" "CMakeFiles/rmi.dir/src/autodiff/workspace.cc.o" "gcc" "CMakeFiles/rmi.dir/src/autodiff/workspace.cc.o.d"
  "/root/repo/src/bisim/bisim.cc" "CMakeFiles/rmi.dir/src/bisim/bisim.cc.o" "gcc" "CMakeFiles/rmi.dir/src/bisim/bisim.cc.o.d"
  "/root/repo/src/clustering/clusterer.cc" "CMakeFiles/rmi.dir/src/clustering/clusterer.cc.o" "gcc" "CMakeFiles/rmi.dir/src/clustering/clusterer.cc.o.d"
  "/root/repo/src/clustering/differentiation.cc" "CMakeFiles/rmi.dir/src/clustering/differentiation.cc.o" "gcc" "CMakeFiles/rmi.dir/src/clustering/differentiation.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "CMakeFiles/rmi.dir/src/clustering/kmeans.cc.o" "gcc" "CMakeFiles/rmi.dir/src/clustering/kmeans.cc.o.d"
  "/root/repo/src/clustering/strategies.cc" "CMakeFiles/rmi.dir/src/clustering/strategies.cc.o" "gcc" "CMakeFiles/rmi.dir/src/clustering/strategies.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/rmi.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/rmi.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/rmi.dir/src/common/table.cc.o" "gcc" "CMakeFiles/rmi.dir/src/common/table.cc.o.d"
  "/root/repo/src/eval/factories.cc" "CMakeFiles/rmi.dir/src/eval/factories.cc.o" "gcc" "CMakeFiles/rmi.dir/src/eval/factories.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/rmi.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/rmi.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/eval/pipeline.cc" "CMakeFiles/rmi.dir/src/eval/pipeline.cc.o" "gcc" "CMakeFiles/rmi.dir/src/eval/pipeline.cc.o.d"
  "/root/repo/src/geometry/geometry.cc" "CMakeFiles/rmi.dir/src/geometry/geometry.cc.o" "gcc" "CMakeFiles/rmi.dir/src/geometry/geometry.cc.o.d"
  "/root/repo/src/imputers/autocorrelation.cc" "CMakeFiles/rmi.dir/src/imputers/autocorrelation.cc.o" "gcc" "CMakeFiles/rmi.dir/src/imputers/autocorrelation.cc.o.d"
  "/root/repo/src/imputers/imputer.cc" "CMakeFiles/rmi.dir/src/imputers/imputer.cc.o" "gcc" "CMakeFiles/rmi.dir/src/imputers/imputer.cc.o.d"
  "/root/repo/src/imputers/neural.cc" "CMakeFiles/rmi.dir/src/imputers/neural.cc.o" "gcc" "CMakeFiles/rmi.dir/src/imputers/neural.cc.o.d"
  "/root/repo/src/imputers/traditional.cc" "CMakeFiles/rmi.dir/src/imputers/traditional.cc.o" "gcc" "CMakeFiles/rmi.dir/src/imputers/traditional.cc.o.d"
  "/root/repo/src/indoor/ascii_map.cc" "CMakeFiles/rmi.dir/src/indoor/ascii_map.cc.o" "gcc" "CMakeFiles/rmi.dir/src/indoor/ascii_map.cc.o.d"
  "/root/repo/src/indoor/venue.cc" "CMakeFiles/rmi.dir/src/indoor/venue.cc.o" "gcc" "CMakeFiles/rmi.dir/src/indoor/venue.cc.o.d"
  "/root/repo/src/la/kernels.cc" "CMakeFiles/rmi.dir/src/la/kernels.cc.o" "gcc" "CMakeFiles/rmi.dir/src/la/kernels.cc.o.d"
  "/root/repo/src/la/matrix.cc" "CMakeFiles/rmi.dir/src/la/matrix.cc.o" "gcc" "CMakeFiles/rmi.dir/src/la/matrix.cc.o.d"
  "/root/repo/src/nn/layers.cc" "CMakeFiles/rmi.dir/src/nn/layers.cc.o" "gcc" "CMakeFiles/rmi.dir/src/nn/layers.cc.o.d"
  "/root/repo/src/positioning/estimators.cc" "CMakeFiles/rmi.dir/src/positioning/estimators.cc.o" "gcc" "CMakeFiles/rmi.dir/src/positioning/estimators.cc.o.d"
  "/root/repo/src/radio/propagation.cc" "CMakeFiles/rmi.dir/src/radio/propagation.cc.o" "gcc" "CMakeFiles/rmi.dir/src/radio/propagation.cc.o.d"
  "/root/repo/src/radiomap/io.cc" "CMakeFiles/rmi.dir/src/radiomap/io.cc.o" "gcc" "CMakeFiles/rmi.dir/src/radiomap/io.cc.o.d"
  "/root/repo/src/radiomap/radio_map.cc" "CMakeFiles/rmi.dir/src/radiomap/radio_map.cc.o" "gcc" "CMakeFiles/rmi.dir/src/radiomap/radio_map.cc.o.d"
  "/root/repo/src/survey/survey.cc" "CMakeFiles/rmi.dir/src/survey/survey.cc.o" "gcc" "CMakeFiles/rmi.dir/src/survey/survey.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
