# Empty dependencies file for rmi.
# This may be replaced when dependencies are built.
