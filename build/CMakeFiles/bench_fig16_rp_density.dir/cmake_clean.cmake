file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_rp_density.dir/bench/bench_fig16_rp_density.cc.o"
  "CMakeFiles/bench_fig16_rp_density.dir/bench/bench_fig16_rp_density.cc.o.d"
  "bench_fig16_rp_density"
  "bench_fig16_rp_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_rp_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
