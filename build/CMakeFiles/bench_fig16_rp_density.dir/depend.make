# Empty dependencies file for bench_fig16_rp_density.
# This may be replaced when dependencies are built.
