file(REMOVE_RECURSE
  "CMakeFiles/example_imputer_shootout.dir/examples/imputer_shootout.cpp.o"
  "CMakeFiles/example_imputer_shootout.dir/examples/imputer_shootout.cpp.o.d"
  "example_imputer_shootout"
  "example_imputer_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_imputer_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
