# Empty dependencies file for example_imputer_shootout.
# This may be replaced when dependencies are built.
