file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_removal_alpha.dir/bench/bench_fig12_removal_alpha.cc.o"
  "CMakeFiles/bench_fig12_removal_alpha.dir/bench/bench_fig12_removal_alpha.cc.o.d"
  "bench_fig12_removal_alpha"
  "bench_fig12_removal_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_removal_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
