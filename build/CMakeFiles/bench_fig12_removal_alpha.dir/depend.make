# Empty dependencies file for bench_fig12_removal_alpha.
# This may be replaced when dependencies are built.
