# Empty dependencies file for property_la_test.
# This may be replaced when dependencies are built.
