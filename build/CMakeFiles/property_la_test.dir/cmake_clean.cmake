file(REMOVE_RECURSE
  "CMakeFiles/property_la_test.dir/tests/property_la_test.cc.o"
  "CMakeFiles/property_la_test.dir/tests/property_la_test.cc.o.d"
  "property_la_test"
  "property_la_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_la_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
