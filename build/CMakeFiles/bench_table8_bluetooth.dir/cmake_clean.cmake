file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_bluetooth.dir/bench/bench_table8_bluetooth.cc.o"
  "CMakeFiles/bench_table8_bluetooth.dir/bench/bench_table8_bluetooth.cc.o.d"
  "bench_table8_bluetooth"
  "bench_table8_bluetooth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_bluetooth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
