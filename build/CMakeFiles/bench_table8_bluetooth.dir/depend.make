# Empty dependencies file for bench_table8_bluetooth.
# This may be replaced when dependencies are built.
