file(REMOVE_RECURSE
  "CMakeFiles/example_venue_survey_tour.dir/examples/venue_survey_tour.cpp.o"
  "CMakeFiles/example_venue_survey_tour.dir/examples/venue_survey_tour.cpp.o.d"
  "example_venue_survey_tour"
  "example_venue_survey_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_venue_survey_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
