# Empty dependencies file for example_venue_survey_tour.
# This may be replaced when dependencies are built.
