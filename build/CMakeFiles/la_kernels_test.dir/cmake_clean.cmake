file(REMOVE_RECURSE
  "CMakeFiles/la_kernels_test.dir/tests/la_kernels_test.cc.o"
  "CMakeFiles/la_kernels_test.dir/tests/la_kernels_test.cc.o.d"
  "la_kernels_test"
  "la_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
