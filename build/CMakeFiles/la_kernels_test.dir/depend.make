# Empty dependencies file for la_kernels_test.
# This may be replaced when dependencies are built.
