# Empty dependencies file for bench_fig15_removal_beta_rp.
# This may be replaced when dependencies are built.
