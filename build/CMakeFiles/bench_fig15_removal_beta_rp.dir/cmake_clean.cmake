file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_removal_beta_rp.dir/bench/bench_fig15_removal_beta_rp.cc.o"
  "CMakeFiles/bench_fig15_removal_beta_rp.dir/bench/bench_fig15_removal_beta_rp.cc.o.d"
  "bench_fig15_removal_beta_rp"
  "bench_fig15_removal_beta_rp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_removal_beta_rp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
