file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_overall_ape.dir/bench/bench_table6_overall_ape.cc.o"
  "CMakeFiles/bench_table6_overall_ape.dir/bench/bench_table6_overall_ape.cc.o.d"
  "bench_table6_overall_ape"
  "bench_table6_overall_ape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_overall_ape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
