# Empty dependencies file for bench_table6_overall_ape.
# This may be replaced when dependencies are built.
