file(REMOVE_RECURSE
  "CMakeFiles/radiomap_test.dir/tests/radiomap_test.cc.o"
  "CMakeFiles/radiomap_test.dir/tests/radiomap_test.cc.o.d"
  "radiomap_test"
  "radiomap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiomap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
