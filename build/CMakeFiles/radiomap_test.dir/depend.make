# Empty dependencies file for radiomap_test.
# This may be replaced when dependencies are built.
