# Empty dependencies file for property_imputers_test.
# This may be replaced when dependencies are built.
