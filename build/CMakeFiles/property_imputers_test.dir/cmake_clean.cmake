file(REMOVE_RECURSE
  "CMakeFiles/property_imputers_test.dir/tests/property_imputers_test.cc.o"
  "CMakeFiles/property_imputers_test.dir/tests/property_imputers_test.cc.o.d"
  "property_imputers_test"
  "property_imputers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_imputers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
