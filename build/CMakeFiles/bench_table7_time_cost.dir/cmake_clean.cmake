file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_time_cost.dir/bench/bench_table7_time_cost.cc.o"
  "CMakeFiles/bench_table7_time_cost.dir/bench/bench_table7_time_cost.cc.o.d"
  "bench_table7_time_cost"
  "bench_table7_time_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_time_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
