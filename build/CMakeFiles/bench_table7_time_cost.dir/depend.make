# Empty dependencies file for bench_table7_time_cost.
# This may be replaced when dependencies are built.
