file(REMOVE_RECURSE
  "CMakeFiles/survey_test.dir/tests/survey_test.cc.o"
  "CMakeFiles/survey_test.dir/tests/survey_test.cc.o.d"
  "survey_test"
  "survey_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
