# Empty dependencies file for survey_test.
# This may be replaced when dependencies are built.
