file(REMOVE_RECURSE
  "CMakeFiles/indoor_test.dir/tests/indoor_test.cc.o"
  "CMakeFiles/indoor_test.dir/tests/indoor_test.cc.o.d"
  "indoor_test"
  "indoor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indoor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
