# Empty dependencies file for indoor_test.
# This may be replaced when dependencies are built.
