file(REMOVE_RECURSE
  "CMakeFiles/ascii_map_test.dir/tests/ascii_map_test.cc.o"
  "CMakeFiles/ascii_map_test.dir/tests/ascii_map_test.cc.o.d"
  "ascii_map_test"
  "ascii_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascii_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
