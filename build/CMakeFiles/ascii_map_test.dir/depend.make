# Empty dependencies file for ascii_map_test.
# This may be replaced when dependencies are built.
