file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_timelag_ablation.dir/bench/bench_fig18_timelag_ablation.cc.o"
  "CMakeFiles/bench_fig18_timelag_ablation.dir/bench/bench_fig18_timelag_ablation.cc.o.d"
  "bench_fig18_timelag_ablation"
  "bench_fig18_timelag_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_timelag_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
