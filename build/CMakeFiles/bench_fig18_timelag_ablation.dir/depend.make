# Empty dependencies file for bench_fig18_timelag_ablation.
# This may be replaced when dependencies are built.
