file(REMOVE_RECURSE
  "CMakeFiles/bisim_test.dir/tests/bisim_test.cc.o"
  "CMakeFiles/bisim_test.dir/tests/bisim_test.cc.o.d"
  "bisim_test"
  "bisim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
