# Empty dependencies file for bisim_test.
# This may be replaced when dependencies are built.
