# Empty dependencies file for positioning_test.
# This may be replaced when dependencies are built.
