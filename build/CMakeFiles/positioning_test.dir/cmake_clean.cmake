file(REMOVE_RECURSE
  "CMakeFiles/positioning_test.dir/tests/positioning_test.cc.o"
  "CMakeFiles/positioning_test.dir/tests/positioning_test.cc.o.d"
  "positioning_test"
  "positioning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/positioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
