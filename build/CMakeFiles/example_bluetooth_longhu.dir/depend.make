# Empty dependencies file for example_bluetooth_longhu.
# This may be replaced when dependencies are built.
