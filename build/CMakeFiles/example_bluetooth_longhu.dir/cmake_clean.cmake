file(REMOVE_RECURSE
  "CMakeFiles/example_bluetooth_longhu.dir/examples/bluetooth_longhu.cpp.o"
  "CMakeFiles/example_bluetooth_longhu.dir/examples/bluetooth_longhu.cpp.o.d"
  "example_bluetooth_longhu"
  "example_bluetooth_longhu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bluetooth_longhu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
