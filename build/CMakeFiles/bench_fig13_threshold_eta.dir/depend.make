# Empty dependencies file for bench_fig13_threshold_eta.
# This may be replaced when dependencies are built.
