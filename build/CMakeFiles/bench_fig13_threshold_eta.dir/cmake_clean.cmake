file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_threshold_eta.dir/bench/bench_fig13_threshold_eta.cc.o"
  "CMakeFiles/bench_fig13_threshold_eta.dir/bench/bench_fig13_threshold_eta.cc.o.d"
  "bench_fig13_threshold_eta"
  "bench_fig13_threshold_eta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_threshold_eta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
