# Empty dependencies file for threading_determinism_test.
# This may be replaced when dependencies are built.
