file(REMOVE_RECURSE
  "CMakeFiles/threading_determinism_test.dir/tests/threading_determinism_test.cc.o"
  "CMakeFiles/threading_determinism_test.dir/tests/threading_determinism_test.cc.o.d"
  "threading_determinism_test"
  "threading_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threading_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
